(* Command-line front-end: run SCTBench benchmarks under the study's
   techniques and regenerate the paper's tables and figures. *)

open Cmdliner

let limit_t =
  let doc = "Schedule limit per technique (the paper uses 10000)." in
  Arg.(value & opt int 10_000 & info [ "limit" ] ~docv:"N" ~doc)

let seed_t =
  let doc = "Random seed for Rand/PCT/Maple and race detection." in
  Arg.(value & opt int 0 & info [ "seed" ] ~docv:"SEED" ~doc)

let suite_t =
  let doc = "Restrict to one suite (CB, chess, CS, inspect, misc, parsec, radbench, splash2, yield, corpus)." in
  Arg.(value & opt (some string) None & info [ "suite" ] ~docv:"SUITE" ~doc)

let ids_t =
  let doc = "Restrict to specific benchmark ids." in
  Arg.(value & opt_all int [] & info [ "id" ] ~docv:"ID" ~doc)

let techniques_t =
  let doc =
    "Techniques to run (ipb, idb, dfs, rand, pct, maple, surw, fair, \
     length, ivb, itb); repeatable and/or comma-separated, e.g. $(b,-t \
     ipb,rand); default: the paper's five."
  in
  Arg.(value & opt_all string [] & info [ "technique"; "t" ] ~docv:"TECH" ~doc)

let time_limit_t =
  let doc =
    "Wall-clock budget in seconds per technique campaign; the campaign \
     stops at the first terminal schedule past the deadline (recorded as \
     hit_deadline, distinct from the schedule-limit stop). Unset: no \
     deadline, fully deterministic runs."
  in
  Arg.(
    value
    & opt (some float) None
    & info [ "time-limit" ] ~docv:"SECONDS" ~doc)

let jobs_t =
  let doc =
    "Worker domains for the parallel engine (0 = one per recommended \
     domain). Results are identical for every value."
  in
  Arg.(value & opt int 0 & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let split_depth_t =
  let doc =
    "Decision depth at which the parallel engine splits the DFS/IPB/IDB \
     schedule tree."
  in
  Arg.(value & opt int 3 & info [ "split-depth" ] ~docv:"D" ~doc)

let prefix_batch_t =
  let doc =
    "Run DFS/IPB/IDB on the prefix-memoizing batched executor: shared \
     schedule prefixes are executed once per batch instead of once per \
     schedule. Every table and every stored journal stays byte-identical \
     apart from the steps-executed/steps-saved counters."
  in
  Arg.(value & flag & info [ "prefix-batch" ] ~doc)

let por_t =
  let doc =
    "Compose DFS/IPB/IDB with bounded partial-order reduction: $(docv) is \
     $(b,sleep), $(b,dpor) or $(b,dpor+sleep). Reduced cells explore fewer \
     schedules to the same bugs (sleep-pruned runs are reported as \
     por_pruned); POR cells always run unbatched and sequential. Other \
     techniques are unaffected."
  in
  Arg.(value & opt (some string) None & info [ "por" ] ~docv:"MODE" ~doc)

let parse_por = function
  | None -> None
  | Some s -> (
      match Sct_explore.Por.parse_mode s with
      | Ok m -> Some m
      | Error msg ->
          prerr_endline msg;
          exit 1)

let fair_bound_t =
  let doc =
    "Yield-difference bound for the $(b,fair) technique: a schedule is cut \
     once a yielding thread is $(docv) yields ahead of the least-yielded \
     live thread (dejafu's sctFairBound). Other techniques ignore it."
  in
  Arg.(
    value
    & opt int Sct_explore.Axes.default_fair_bound
    & info [ "fair-bound" ] ~docv:"N" ~doc)

let length_bound_t =
  let doc =
    "Schedule-length bound in scheduling points for the $(b,length) \
     technique (dejafu's sctLengthBound). Other techniques ignore it."
  in
  Arg.(
    value
    & opt int Sct_explore.Axes.default_length_bound
    & info [ "length-bound" ] ~docv:"N" ~doc)

(* The two Axes bounds travel together through [options_of]. *)
let bounds_t = Term.(const (fun f l -> (f, l)) $ fair_bound_t $ length_bound_t)

let store_t =
  let doc =
    "Persist per-cell results and bug-witness artifacts to $(docv) \
     (journal + artifacts); see also $(b,--resume)."
  in
  Arg.(value & opt (some string) None & info [ "store" ] ~docv:"DIR" ~doc)

let resume_t =
  let doc =
    "Reuse the completed cells journalled in the $(b,--store) directory and \
     re-execute only the incomplete ones. Without this flag a non-empty \
     store directory is refused."
  in
  Arg.(value & flag & info [ "resume" ] ~doc)

(* Open the study store, enforcing the --store/--resume contract. *)
let open_store ~resume store =
  match store with
  | None ->
      if resume then begin
        prerr_endline "--resume requires --store DIR";
        exit 1
      end;
      None
  | Some dir ->
      let db = Sct_store.Db.open_ ~dir in
      if (not resume) && not (Sct_store.Db.is_empty db) then begin
        Printf.eprintf
          "store %s already holds %d completed cells; pass --resume to \
           continue it, or point --store at a fresh directory\n"
          dir (Sct_store.Db.size db);
        exit 1
      end;
      Some db

let close_store = Option.iter Sct_store.Db.close

let resolve_jobs jobs =
  if jobs <= 0 then Sct_parallel.Pool.default_jobs () else jobs

let options_of ?(jobs = 1) ?(split_depth = 3) ?(prefix_batch = false) ?por
    ?time_limit
    ?(bounds =
      ( Sct_explore.Axes.default_fair_bound,
        Sct_explore.Axes.default_length_bound )) limit seed =
  let fair_bound, length_bound = bounds in
  {
    Sct_explore.Techniques.default_options with
    Sct_explore.Techniques.limit;
    seed;
    jobs = resolve_jobs jobs;
    split_depth;
    time_limit;
    prefix_batch;
    por;
    fair_bound;
    length_bound;
  }

let parse_techniques names =
  match Sct_explore.Techniques.parse_list names with
  | Ok ts -> ts
  | Error msg ->
      prerr_endline msg;
      exit 1

let corpus_t =
  let doc =
    "Load a promoted corpus directory (see the $(b,corpus) command group) \
     and register its entries as extension benchmarks in the $(b,corpus) \
     suite before selection."
  in
  Arg.(value & opt (some string) None & info [ "corpus" ] ~docv:"DIR" ~doc)

let load_corpus = function
  | None -> ()
  | Some dir -> (
      match Sct_corpus.Suite_io.register ~dir () with
      | Ok benches ->
          Printf.eprintf "corpus: registered %d extension benchmark(s) from %s\n%!"
            (List.length benches) dir
      | Error msg ->
          prerr_endline msg;
          exit 1)

let select suite ids =
  let all = Sctbench.Registry.full () in
  let all =
    match suite with
    | None -> all
    | Some s -> (
        match Sctbench.Bench.suite_of_name s with
        | Some suite -> List.filter (fun (b : Sctbench.Bench.t) -> b.Sctbench.Bench.suite = suite) all
        | None -> failwith ("unknown suite: " ^ s))
  in
  match ids with
  | [] -> all
  | ids -> List.filter (fun (b : Sctbench.Bench.t) -> List.mem b.Sctbench.Bench.id ids) all

let progress (b : Sctbench.Bench.t) =
  Printf.eprintf "[%2d] %s...\n%!" b.Sctbench.Bench.id b.Sctbench.Bench.name

(* list *)
let list_cmd =
  let run corpus =
    load_corpus corpus;
    List.iter
      (fun (b : Sctbench.Bench.t) ->
        Printf.printf "%2d  %-28s %s\n" b.Sctbench.Bench.id
          b.Sctbench.Bench.name b.Sctbench.Bench.description)
      (Sctbench.Registry.full ())
  in
  Cmd.v
    (Cmd.info "list"
       ~doc:
         "List the 55 built-in benchmarks — the 52 of SCTBench plus the \
          yield-loop family (plus any $(b,--corpus) extensions).")
    Term.(const run $ corpus_t)

(* detect *)
let detect_cmd =
  let run seed name =
    match Sctbench.Registry.by_name name with
    | None -> prerr_endline ("unknown benchmark: " ^ name); exit 1
    | Some b ->
        let o = options_of 0 seed in
        let d = Sct_explore.Techniques.detect_races o b.Sctbench.Bench.program in
        Printf.printf "racy locations (%d):\n" (List.length d.Sct_race.Promotion.racy);
        List.iter (fun l -> Printf.printf "  %s\n" l) d.Sct_race.Promotion.racy
  in
  let name_t = Arg.(required & pos 0 (some string) None & info [] ~docv:"NAME") in
  Cmd.v
    (Cmd.info "detect" ~doc:"Run the data-race detection phase on one benchmark.")
    Term.(const run $ seed_t $ name_t)

(* run one benchmark *)
let run_cmd =
  let run limit seed jobs split_depth prefix_batch por time_limit bounds techs
      store resume name =
    match Sctbench.Registry.by_name name with
    | None -> prerr_endline ("unknown benchmark: " ^ name); exit 1
    | Some b ->
        let o =
          options_of ~jobs ~split_depth ~prefix_batch ?por:(parse_por por)
            ?time_limit ~bounds limit seed
        in
        let techniques = parse_techniques techs in
        let store = open_store ~resume store in
        let row =
          Sct_parallel.Pool.with_pool ~jobs:o.Sct_explore.Techniques.jobs
            (fun pool ->
              Sct_parallel.Suite.run_benchmark ~pool ?store ~techniques o b)
        in
        close_store store;
        Printf.printf "%s (%d racy locations)\n" b.Sctbench.Bench.name
          row.Sct_report.Run_data.racy_locations;
        List.iter
          (fun (t, s) ->
            Format.printf "  %-8s %a@."
              (Sct_explore.Techniques.name t)
              Sct_explore.Stats.pp s;
            (match Sct_explore.Stats.distinct s with
            | Some d ->
                Format.printf "           distinct schedules: %d of %d@." d
                  s.Sct_explore.Stats.total
            | None -> ());
            (match Sct_explore.Guarantee.of_stats s with
            | Sct_explore.Guarantee.None_ -> ()
            | g ->
                Format.printf "           coverage: %a@."
                  Sct_explore.Guarantee.pp g);
            match s.Sct_explore.Stats.first_bug with
            | Some w ->
                Format.printf "           bug: %a (pc=%d dc=%d, %d steps)@."
                  Sct_core.Outcome.pp_bug w.Sct_explore.Stats.w_bug
                  w.Sct_explore.Stats.w_pc w.Sct_explore.Stats.w_dc
                  (Sct_core.Schedule.length w.Sct_explore.Stats.w_schedule)
            | None -> ())
          row.Sct_report.Run_data.results
  in
  let name_t = Arg.(required & pos 0 (some string) None & info [] ~docv:"NAME") in
  Cmd.v
    (Cmd.info "run" ~doc:"Run one benchmark under the selected techniques.")
    Term.(
      const run $ limit_t $ seed_t $ jobs_t $ split_depth_t $ prefix_batch_t
      $ por_t $ time_limit_t $ bounds_t $ techniques_t $ store_t $ resume_t
      $ name_t)

let with_bench name f =
  match Sctbench.Registry.by_name name with
  | None ->
      prerr_endline ("unknown benchmark: " ^ name);
      exit 1
  | Some b -> f b

let detection_promote seed (b : Sctbench.Bench.t) =
  let o = options_of 0 seed in
  Sct_race.Promotion.promote
    (Sct_explore.Techniques.detect_races o b.Sctbench.Bench.program)

(* benchmark details *)
let info_cmd =
  let run name =
    with_bench name (fun b ->
        let p = b.Sctbench.Bench.paper in
        Printf.printf "%s (id %d, suite %s)\n\n%s\n\n" b.Sctbench.Bench.name
          b.Sctbench.Bench.id
          (Sctbench.Bench.suite_name b.Sctbench.Bench.suite)
          b.Sctbench.Bench.description;
        let opt = function None -> "not found" | Some i -> "bound " ^ string_of_int i in
        Printf.printf "paper Table 3 row:\n";
        Printf.printf "  threads %d, max enabled %d\n" p.Sctbench.Bench.p_threads
          p.Sctbench.Bench.p_max_enabled;
        Printf.printf "  IPB %s; IDB %s; DFS %s; Rand %s; MapleAlg %s\n"
          (opt p.Sctbench.Bench.p_ipb_bound)
          (opt p.Sctbench.Bench.p_idb_bound)
          (if p.Sctbench.Bench.p_dfs_found then "found" else "not found")
          (if p.Sctbench.Bench.p_rand_found then "found" else "not found")
          (if p.Sctbench.Bench.p_maple_found then "found" else "not found");
        match (b.Sctbench.Bench.expect_ipb, b.Sctbench.Bench.expect_idb) with
        | None, None -> ()
        | ipb, idb ->
            Printf.printf "expected bounds in this model: IPB %s, IDB %s\n"
              (match ipb with Some i -> string_of_int i | None -> "-")
              (match idb with Some i -> string_of_int i | None -> "-"))
  in
  let name_t = Arg.(required & pos 0 (some string) None & info [] ~docv:"NAME") in
  Cmd.v
    (Cmd.info "info" ~doc:"Describe a benchmark and its paper row.")
    Term.(const run $ name_t)

let schedule_file_t =
  let doc =
    "Read the schedule from $(docv) instead of the command line: lines \
     starting with # and blank lines are ignored, the remaining line uses \
     the inline syntax. Accepts recorded $(b,.sched) witness artifacts."
  in
  Arg.(value & opt (some string) None & info [ "file" ] ~docv:"PATH" ~doc)

let schedule_of_spec ~what trace file =
  match (trace, file) with
  | Some t, None -> Sct_explore.Replay.parse t
  | None, Some p -> Sct_store.Artifact.schedule_of_file p
  | Some _, Some _ ->
      prerr_endline ("give either an inline " ^ what ^ " or --file, not both");
      exit 1
  | None, None ->
      prerr_endline ("a " ^ what ^ " is required: inline or via --file");
      exit 1

(* replay a schedule *)
let replay_cmd =
  let run seed name trace file =
    with_bench name (fun b ->
        let schedule = schedule_of_spec ~what:"schedule" trace file in
        let promote = detection_promote seed b in
        match
          Sct_explore.Replay.replay ~promote ~schedule b.Sctbench.Bench.program
        with
        | None -> print_endline "schedule is infeasible for this program"
        | Some r ->
            Format.printf "outcome: %a@." Sct_core.Outcome.pp
              r.Sct_core.Runtime.r_outcome;
            Format.printf "executed schedule (pc=%d dc=%d): %a@."
              r.Sct_core.Runtime.r_pc r.Sct_core.Runtime.r_dc
              Sct_core.Schedule.pp r.Sct_core.Runtime.r_schedule)
  in
  let name_t = Arg.(required & pos 0 (some string) None & info [] ~docv:"NAME") in
  let trace_t =
    Arg.(
      value
      & pos 1 (some string) None
      & info [] ~docv:"SCHEDULE" ~doc:"Comma-separated thread ids, e.g. 0,0,1,2.")
  in
  Cmd.v
    (Cmd.info "replay" ~doc:"Replay a schedule against a benchmark.")
    Term.(const run $ seed_t $ name_t $ trace_t $ schedule_file_t)

(* find a bug with the random scheduler (or take a recorded witness), then
   simplify its trace *)
let minimize_cmd =
  let simplify b promote schedule =
    match
      Sct_explore.Simplify.minimize ~promote ~program:b.Sctbench.Bench.program
        schedule
    with
    | None -> print_endline "witness did not replay as buggy"
    | Some m ->
        Format.printf "simplified witness: pc=%d dc=%d, %d steps (%d rounds)@."
          m.Sct_explore.Simplify.result.Sct_core.Runtime.r_pc
          m.Sct_explore.Simplify.result.Sct_core.Runtime.r_dc
          (Sct_core.Schedule.length m.Sct_explore.Simplify.schedule)
          m.Sct_explore.Simplify.rounds;
        Format.printf "schedule: %a@." Sct_core.Schedule.pp
          m.Sct_explore.Simplify.schedule
  in
  let run limit seed name file =
    with_bench name (fun b ->
        let promote = detection_promote seed b in
        match file with
        | Some path ->
            (* a recorded witness: skip the random search *)
            let schedule = Sct_store.Artifact.schedule_of_file path in
            Format.printf "witness from %s: %d steps@." path
              (Sct_core.Schedule.length schedule);
            simplify b promote schedule
        | None -> (
            let s =
              Sct_explore.Random_walk.explore ~promote ~stop_on_bug:true ~seed
                ~runs:limit b.Sctbench.Bench.program
            in
            match s.Sct_explore.Stats.first_bug with
            | None -> print_endline "no bug found by the random scheduler"
            | Some w ->
                Format.printf "random witness: pc=%d dc=%d, %d steps@."
                  w.Sct_explore.Stats.w_pc w.Sct_explore.Stats.w_dc
                  (Sct_core.Schedule.length w.Sct_explore.Stats.w_schedule);
                simplify b promote w.Sct_explore.Stats.w_schedule))
  in
  let name_t = Arg.(required & pos 0 (some string) None & info [] ~docv:"NAME") in
  Cmd.v
    (Cmd.info "minimize"
       ~doc:
         "Find a bug with the random scheduler (or start from a recorded \
          witness via --file) and simplify the trace to few preemptions.")
    Term.(const run $ limit_t $ seed_t $ name_t $ schedule_file_t)

(* partial-order reduction *)
let por_cmd =
  let run limit name mode =
    with_bench name (fun b ->
        let mode =
          match Sct_explore.Por.parse_mode mode with
          | Ok m -> m
          | Error msg ->
              prerr_endline msg;
              exit 1
        in
        (* POR needs full dependence information: promote everything *)
        let r =
          Sct_explore.Por.explore ~promote:(fun _ -> true) ~mode ~limit
            b.Sctbench.Bench.program
        in
        Printf.printf
          "%s: %d schedules (%d sleep-pruned, %d executions), %d buggy, \
           complete=%b%s\n"
          b.Sctbench.Bench.name r.Sct_explore.Por.counted
          r.Sct_explore.Por.pruned_sleep r.Sct_explore.Por.executions
          r.Sct_explore.Por.buggy r.Sct_explore.Por.complete
          (match r.Sct_explore.Por.to_first_bug with
          | Some i -> Printf.sprintf ", first bug at %d" i
          | None -> ""))
  in
  let name_t = Arg.(required & pos 0 (some string) None & info [] ~docv:"NAME") in
  let mode_t =
    Arg.(
      value & opt string "both"
      & info [ "mode" ] ~docv:"MODE" ~doc:"sleep, dpor, or dpor+sleep (alias: both).")
  in
  Cmd.v
    (Cmd.info "por"
       ~doc:
         "Explore a benchmark with partial-order reduction (unbounded, all \
          locations visible).")
    Term.(const run $ limit_t $ name_t $ mode_t)

(* the full study: tables and figures *)
let study what limit seed jobs split_depth prefix_batch por time_limit bounds
    suite ids techs store resume corpus =
  load_corpus corpus;
  let benches = select suite ids in
  let o =
    options_of ~jobs ~split_depth ~prefix_batch ?por:(parse_por por)
      ?time_limit ~bounds limit seed
  in
  match what with
  | `Table1 -> Sct_report.Table1.print benches
  | (`Table2 | `Table3 | `Fig2 | `Fig3 | `Fig4 | `Agreement | `Csv) as what ->
      let techniques = parse_techniques techs in
      let store = open_store ~resume store in
      let rows =
        Sct_parallel.Pool.with_pool ~jobs:o.Sct_explore.Techniques.jobs
          (fun pool ->
            Sct_parallel.Suite.run_all ~pool ?store ~techniques ~progress o
              benches)
      in
      close_store store;
      (match what with
      | `Table2 -> Sct_report.Table2.print ~limit rows
      | `Table3 ->
          Sct_report.Table3.print ~limit rows;
          Sct_report.Table3.print_agreement rows
      | `Fig2 -> Sct_report.Venn.print_figure2 rows
      | `Fig3 -> Sct_report.Figures.print_figure3 ~limit rows
      | `Fig4 -> Sct_report.Figures.print_figure4 ~limit rows
      | `Agreement -> Sct_report.Table3.print_agreement rows
      | `Csv -> Sct_report.Csv.table3 ~limit rows)

let study_cmd name what doc =
  Cmd.v (Cmd.info name ~doc)
    Term.(
      const (study what) $ limit_t $ seed_t $ jobs_t $ split_depth_t
      $ prefix_batch_t $ por_t $ time_limit_t $ bounds_t $ suite_t $ ids_t
      $ techniques_t $ store_t $ resume_t $ corpus_t)

(* self-testing fuzz: generated programs under the differential oracle *)
let fuzz_cmd =
  let count_t =
    let doc = "Number of programs to generate and check." in
    Arg.(value & opt int 200 & info [ "count" ] ~docv:"N" ~doc)
  in
  let fuzz_limit_t =
    let doc = "Schedule budget per technique campaign and program." in
    Arg.(value & opt int 500 & info [ "limit" ] ~docv:"N" ~doc)
  in
  let max_steps_t =
    let doc = "Per-execution step budget (live-lock guard)." in
    Arg.(value & opt int 5_000 & info [ "max-steps" ] ~docv:"N" ~doc)
  in
  let fuzz_store_t =
    let doc =
      "Write shrunk counterexamples as replayable artifacts under \
       $(docv)/fuzz."
    in
    Arg.(value & opt (some string) None & info [ "store" ] ~docv:"DIR" ~doc)
  in
  let vocab_t =
    let doc =
      "Generator vocabulary: $(b,classic) (the original pthread-style \
       statements), $(b,async) (biased toward futures, bounded channels \
       and the work-queue idiom) or $(b,full) (both, evenly mixed)."
    in
    Arg.(value & opt string "classic" & info [ "vocab" ] ~docv:"VOCAB" ~doc)
  in
  let run seed count limit max_steps jobs prefix_batch por store techs vocab =
    let techniques =
      match
        Sct_explore.Techniques.parse_list ~default:Sct_explore.Techniques.all
          techs
      with
      | Ok ts -> ts
      | Error msg ->
          prerr_endline msg;
          exit 1
    in
    let vocab =
      match Sct_fuzz.Gen.vocab_of_name vocab with
      | Some v -> v
      | None ->
          Printf.eprintf
            "unknown vocabulary %s (expected classic, async or full)\n" vocab;
          exit 1
    in
    let cfg =
      { Sct_fuzz.Oracle.limit; max_steps; race_runs = 5; prefix_batch;
        por = parse_por por; techniques }
    in
    (* program i is a pure function of (seed, i): shard across the pool,
       reassemble in index order — output is identical for every --jobs *)
    let reports =
      Sct_parallel.Pool.with_pool ~jobs:(resolve_jobs jobs) (fun pool ->
          List.init count (fun i ->
              Sct_parallel.Pool.submit pool (fun () ->
                  Sct_fuzz.Harness.one_program ~vocab ~cfg ~campaign_seed:seed
                    i))
          |> List.map Sct_parallel.Pool.await)
    in
    let summary = Sct_fuzz.Harness.summarize reports in
    List.iter
      (fun cx ->
        Format.printf "%a@." Sct_fuzz.Harness.pp_counterexample cx;
        match store with
        | Some dir ->
            let path =
              Sct_fuzz.Harness.dump ~dir:(Filename.concat dir "fuzz") cx
            in
            Printf.printf "counterexample written to %s\n" path
        | None -> ())
      summary.Sct_fuzz.Harness.s_counterexamples;
    Printf.printf
      "fuzz: %d programs (seed %d, limit %d): %d invariant violation(s)\n"
      summary.Sct_fuzz.Harness.s_programs seed limit
      (List.length summary.Sct_fuzz.Harness.s_counterexamples);
    if summary.Sct_fuzz.Harness.s_counterexamples <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Generate random concurrent programs and check the \
          cross-technique differential invariants (inclusions, POR \
          equivalence, witness replay, schedule-count algebra, \
          shard-merge determinism); failing programs are shrunk to \
          minimal counterexamples.")
    Term.(
      const run $ seed_t $ count_t $ fuzz_limit_t $ max_steps_t $ jobs_t
      $ prefix_batch_t $ por_t $ fuzz_store_t $ techniques_t $ vocab_t)

(* the corpus factory: mine, promote, stats, run *)
let corpus_cmd =
  let module Mine = Sct_corpus.Mine in
  let module Manifest = Sct_corpus.Manifest in
  let count_t =
    let doc = "Number of programs to generate and survey." in
    Arg.(value & opt int Mine.default_config.Mine.count & info [ "count" ] ~docv:"N" ~doc)
  in
  let mine_limit_t =
    let doc = "Schedule budget per technique and program." in
    Arg.(value & opt int Mine.default_config.Mine.limit & info [ "limit" ] ~docv:"N" ~doc)
  in
  let max_steps_t =
    let doc = "Per-execution step budget (live-lock guard)." in
    Arg.(
      value
      & opt int Mine.default_config.Mine.max_steps
      & info [ "max-steps" ] ~docv:"N" ~doc)
  in
  let vocab_t =
    let doc = "Generator vocabulary: classic, async or full." in
    Arg.(
      value
      & opt string (Sct_fuzz.Gen.vocab_name Mine.default_config.Mine.vocab)
      & info [ "vocab" ] ~docv:"VOCAB" ~doc)
  in
  let shrink_checks_t =
    let doc = "Survey budget per keeper shrink." in
    Arg.(
      value
      & opt int Mine.default_config.Mine.shrink_checks
      & info [ "shrink-checks" ] ~docv:"N" ~doc)
  in
  let dir_t =
    let doc = "The corpus directory." in
    Arg.(required & opt (some string) None & info [ "dir" ] ~docv:"DIR" ~doc)
  in
  let mine_config seed count vocab limit max_steps techs shrink_checks =
    let techniques =
      match
        Sct_explore.Techniques.parse_list ~default:Sct_explore.Techniques.all
          techs
      with
      | Ok ts -> ts
      | Error msg ->
          prerr_endline msg;
          exit 1
    in
    let vocab =
      match Sct_fuzz.Gen.vocab_of_name vocab with
      | Some v -> v
      | None ->
          Printf.eprintf
            "unknown vocabulary %s (expected classic, async or full)\n" vocab;
          exit 1
    in
    {
      Mine.default_config with
      Mine.campaign_seed = seed;
      count;
      vocab;
      limit;
      max_steps;
      techniques;
      shrink_checks;
    }
  in
  (* Phase A, sharded: probe i is pure in (cfg, i), so futures are awaited
     in index order and the probe list — hence everything downstream — is
     byte-identical for every --jobs. With a store, finished probes are
     read back instead of re-run, and fresh ones are journalled per
     program×technique cell the moment they complete. *)
  let mine_probes (cfg : Mine.config) jobs store =
    let bench_name i =
      "corpus."
      ^ Manifest.entry_name ~campaign_seed:cfg.Mine.campaign_seed ~index:i
    in
    let keys i =
      let seed =
        Sct_fuzz.Gen.derive_seed ~campaign_seed:cfg.Mine.campaign_seed
          ~index:i
      in
      let o = Mine.options_of cfg ~seed in
      ( seed,
        o,
        List.map
          (fun t ->
            ( t,
              Sct_store.Db.fingerprint ~bench:(bench_name i)
                ~technique:(Sct_explore.Techniques.name t) o ))
          cfg.Mine.techniques )
    in
    let cached i =
      match store with
      | None -> None
      | Some db -> (
          let seed, _, cells = keys i in
          let entries =
            List.map
              (fun (t, key) ->
                Option.map (fun e -> (t, e)) (Sct_store.Db.find db key))
              cells
          in
          match
            List.map (function Some e -> e | None -> raise Exit) entries
          with
          | entries ->
              Some
                {
                  Mine.p_index = i;
                  p_seed = seed;
                  p_racy =
                    (match entries with
                    | (_, e) :: _ -> e.Sct_store.Db.e_racy
                    | [] -> 0);
                  p_stats =
                    List.map
                      (fun (t, e) -> (t, e.Sct_store.Db.e_stats))
                      entries;
                }
          | exception Exit -> None)
    in
    let journal (p : Mine.probe) =
      match store with
      | None -> ()
      | Some db ->
          let _, o, cells = keys p.Mine.p_index in
          List.iter2
            (fun (t, key) (t', stats) ->
              assert (t = t');
              Sct_store.Db.record db ~key ~bench:(bench_name p.Mine.p_index)
                ~technique:(Sct_explore.Techniques.name t)
                ~racy:p.Mine.p_racy ~options:o stats)
            cells p.Mine.p_stats
    in
    Sct_parallel.Pool.with_pool ~jobs:(resolve_jobs jobs) (fun pool ->
        List.init cfg.Mine.count (fun i ->
            match cached i with
            | Some p -> Either.Left p
            | None ->
                Either.Right
                  (Sct_parallel.Pool.submit pool (fun () -> Mine.probe cfg i)))
        |> List.map (function
             | Either.Left p -> p
             | Either.Right fut ->
                 let p = Sct_parallel.Pool.await fut in
                 journal p;
                 p))
  in
  let mine_outcome cfg jobs store resume =
    let store = open_store ~resume store in
    let probes = mine_probes cfg jobs store in
    close_store store;
    Mine.collect cfg probes
  in
  let print_outcome (cfg : Mine.config) (o : Mine.outcome) =
    Printf.printf
      "mined %d programs (seed %d, vocab %s, limit %d): %d hard, %d \
       duplicate(s), %d kept\n"
      o.Mine.o_programs cfg.Mine.campaign_seed
      (Sct_fuzz.Gen.vocab_name cfg.Mine.vocab)
      cfg.Mine.limit o.Mine.o_hard o.Mine.o_duplicates
      (List.length o.Mine.o_candidates);
    List.iter
      (fun (c : Mine.candidate) ->
        let h = c.Mine.c_hardness in
        Printf.printf "%-12s %-12s size %d (from %d)  digest %s  found-by %s\n"
          (Manifest.entry_name ~campaign_seed:cfg.Mine.campaign_seed
             ~index:c.Mine.c_index)
          (Sct_corpus.Hardness.cls_name h.Sct_corpus.Hardness.h_class)
          c.Mine.c_size c.Mine.c_original_size
          (String.sub c.Mine.c_digest 0 12)
          (match h.Sct_corpus.Hardness.h_found_by with
          | [] -> "-"
          | fs -> String.concat "," fs))
      o.Mine.o_candidates
  in
  let mine_cmd =
    let run seed count vocab limit max_steps techs shrink_checks jobs store
        resume =
      let cfg = mine_config seed count vocab limit max_steps techs shrink_checks in
      print_outcome cfg (mine_outcome cfg jobs store resume)
    in
    Cmd.v
      (Cmd.info "mine"
         ~doc:
           "Mine hard concurrency scenarios: generate $(b,--count) seeded \
            programs, survey each under the configured techniques, keep \
            the deep/rare/elusive ones, shrink them, and dedupe \
            behavioural duplicates. Deterministic in (seed, count); \
            byte-identical for every $(b,--jobs); resumable via \
            $(b,--store).")
      Term.(
        const run $ seed_t $ count_t $ vocab_t $ mine_limit_t $ max_steps_t
        $ techniques_t $ shrink_checks_t $ jobs_t $ store_t $ resume_t)
  in
  let promote_cmd =
    let run seed count vocab limit max_steps techs shrink_checks jobs store
        resume dir =
      let cfg = mine_config seed count vocab limit max_steps techs shrink_checks in
      let outcome = mine_outcome cfg jobs store resume in
      let manifest =
        Sct_corpus.Suite_io.write ~dir cfg outcome.Mine.o_candidates
      in
      Printf.printf "promoted %d program(s) to %s\n"
        (List.length manifest.Manifest.entries)
        dir
    in
    Cmd.v
      (Cmd.info "promote"
         ~doc:
           "Mine (resuming from $(b,--store) when given) and write the \
            kept programs into $(b,--dir) as a versioned extension suite: \
            one readable program file per entry plus a manifest recording \
            seeds, hardness and behavioural digests. Re-promoting the \
            same mine is byte-identical.")
      Term.(
        const run $ seed_t $ count_t $ vocab_t $ mine_limit_t $ max_steps_t
        $ techniques_t $ shrink_checks_t $ jobs_t $ store_t $ resume_t $ dir_t)
  in
  let stats_cmd =
    let run dir =
      let path = Filename.concat dir Sct_corpus.Suite_io.manifest_file in
      match In_channel.with_open_bin path In_channel.input_all with
      | exception Sys_error msg ->
          prerr_endline msg;
          exit 1
      | src -> (
          match Manifest.of_string src with
          | Error msg ->
              prerr_endline msg;
              exit 1
          | Ok m -> Sct_corpus.Report.stats Format.std_formatter m)
    in
    Cmd.v
      (Cmd.info "stats"
         ~doc:
           "Describe a promoted corpus from its manifest: mining \
            configuration, hardness census, per-entry records.")
      Term.(const run $ dir_t)
  in
  let run_cmd =
    let run dir limit seed jobs split_depth prefix_batch por time_limit bounds
        techs store resume =
      load_corpus (Some dir);
      let benches = Sctbench.Registry.of_suite Sctbench.Bench.Corpus in
      if benches = [] then begin
        prerr_endline "corpus run: the corpus is empty";
        exit 1
      end;
      let o =
        options_of ~jobs ~split_depth ~prefix_batch ?por:(parse_por por)
          ?time_limit ~bounds limit seed
      in
      let techniques = parse_techniques techs in
      let store = open_store ~resume store in
      let rows =
        Sct_parallel.Pool.with_pool ~jobs:o.Sct_explore.Techniques.jobs
          (fun pool ->
            Sct_parallel.Suite.run_all ~pool ?store ~techniques ~progress o
              benches)
      in
      close_store store;
      Sct_report.Table3.print ~limit rows;
      (* the manifest's mining-time hardness is the corpus paper row, so
         the agreement table is a standing regression study: current
         behaviour vs promoted behaviour *)
      Sct_report.Table3.print_agreement rows
    in
    Cmd.v
      (Cmd.info "run"
         ~doc:
           "Load a promoted corpus and run the full study pipeline over \
            it, printing the Table-3-style report plus the agreement of \
            current behaviour against the mining-time record — the \
            corpus's standing regression study.")
      Term.(
        const run $ dir_t $ limit_t $ seed_t $ jobs_t $ split_depth_t
        $ prefix_batch_t $ por_t $ time_limit_t $ bounds_t $ techniques_t
        $ store_t $ resume_t)
  in
  Cmd.group
    (Cmd.info "corpus"
       ~doc:
         "The benchmark factory: mine hard generated scenarios, promote \
          them into a versioned extension suite, and keep them honest as \
          a standing regression study.")
    [ mine_cmd; promote_cmd; stats_cmd; run_cmd ]

(* fleet-scale campaign orchestration *)
let campaign_store_t =
  let doc =
    "The campaign store directory. Opened resumably: an existing journal \
     is continued from exactly where it stopped."
  in
  Arg.(required & opt (some string) None & info [ "store" ] ~docv:"DIR" ~doc)

let policy_t =
  let doc =
    "Budget-allocation policy: $(b,uniform) (round-robin; completed \
     campaigns reproduce the one-shot runner's outputs byte-for-byte) or \
     $(b,bandit) (adaptive: budget flows to cells whose distinct-schedule \
     coverage still grows and whose bound is still low)."
  in
  Arg.(value & opt string "uniform" & info [ "policy" ] ~docv:"POLICY" ~doc)

let slice_t =
  let doc = "Budget slice (schedules) leased to a cell at a time." in
  Arg.(value & opt int 500 & info [ "slice" ] ~docv:"N" ~doc)

let parse_policy s =
  match Sct_campaign.Scheduler.policy_of_name s with
  | Some p -> p
  | None ->
      Printf.eprintf "unknown policy %s (expected one of: %s)\n" s
        (String.concat ", " Sct_campaign.Scheduler.policy_names);
      exit 1

let parse_shard s =
  match String.index_opt s '/' with
  | Some i -> (
      let k = String.sub s 0 i
      and n = String.sub s (i + 1) (String.length s - i - 1) in
      match (int_of_string_opt k, int_of_string_opt n) with
      | Some k, Some n when n >= 1 && k >= 0 && k < n -> (k, n)
      | _ ->
          Printf.eprintf "invalid shard %s (expected K/N with 0 <= K < N)\n" s;
          exit 1)
  | None ->
      Printf.eprintf "invalid shard %s (expected K/N, e.g. 0/3)\n" s;
      exit 1

let run_campaign ~shard limit seed jobs split_depth prefix_batch por
    time_limit bounds suite ids techs policy slice store corpus =
  load_corpus corpus;
  let benches = select suite ids in
  let o =
    options_of ~jobs ~split_depth ~prefix_batch ?por:(parse_por por)
      ?time_limit ~bounds limit seed
  in
  let techniques = parse_techniques techs in
  let policy = parse_policy policy in
  let cells = Sct_campaign.Cell.grid ~techniques o benches in
  let cells =
    match shard with
    | None -> cells
    | Some (k, n) -> Sct_campaign.Cell.shard ~k ~n cells
  in
  let db = Sct_store.Db.open_ ~dir:store in
  let outcome =
    Sct_parallel.Pool.with_pool ~jobs:o.Sct_explore.Techniques.jobs
      (fun pool ->
        Sct_campaign.Orchestrator.run ~policy ~slice
          ~on_slice:(fun c p ->
            Printf.eprintf "%-40s slice %d: %d schedules banked%s\n%!"
              (Sct_campaign.Cell.name c)
              p.Sct_store.Codec.p_slices p.Sct_store.Codec.p_consumed
              (if p.Sct_store.Codec.p_done then " (done)" else ""))
          ~pool ~db cells)
  in
  Sct_store.Db.close db;
  Printf.printf "campaign: %d cells, %d finished, %d slice(s) this run\n"
    outcome.Sct_campaign.Orchestrator.cells
    outcome.Sct_campaign.Orchestrator.finished
    outcome.Sct_campaign.Orchestrator.slices

let campaign_cmd =
  let grid_args run =
    Term.(
      const run $ limit_t $ seed_t $ jobs_t $ split_depth_t $ prefix_batch_t
      $ por_t $ time_limit_t $ bounds_t $ suite_t $ ids_t $ techniques_t
      $ policy_t $ slice_t $ campaign_store_t $ corpus_t)
  in
  let run_cmd =
    Cmd.v
      (Cmd.info "run"
         ~doc:
           "Run (or resume) a campaign over the selected grid in this \
            process, leasing budget slices per cell until every cell is \
            done. Safe to kill at any instant: relaunching on the same \
            store resumes exactly.")
      (grid_args (run_campaign ~shard:None))
  in
  let worker_cmd =
    let shard_t =
      let doc =
        "This worker's lease, $(b,K/N): of $(i,N) disjoint shards of the \
         campaign grid, work the $(i,K)-th (0-based). Each worker writes \
         its own store; fold them with $(b,store merge)."
      in
      Arg.(
        required & opt (some string) None & info [ "shard" ] ~docv:"K/N" ~doc)
    in
    let run shard limit seed jobs split_depth prefix_batch por time_limit
        bounds suite ids techs policy slice store corpus =
      run_campaign ~shard:(Some (parse_shard shard)) limit seed jobs
        split_depth prefix_batch por time_limit bounds suite ids techs policy
        slice store corpus
    in
    Cmd.v
      (Cmd.info "worker"
         ~doc:
           "Run one shard of a campaign into a per-worker store (multi-\
            process fleets: N workers with --shard 0/N .. (N-1)/N, then \
            $(b,store merge)).")
      Term.(
        const run $ shard_t $ limit_t $ seed_t $ jobs_t $ split_depth_t
        $ prefix_batch_t $ por_t $ time_limit_t $ bounds_t $ suite_t $ ids_t
        $ techniques_t $ policy_t $ slice_t $ campaign_store_t $ corpus_t)
  in
  let status_cmd =
    let run store =
      let db = Sct_store.Db.open_ ~dir:store in
      Sct_campaign.Status.render Format.std_formatter db;
      Sct_store.Db.close db
    in
    Cmd.v
      (Cmd.info "status"
         ~doc:
           "Report per-cell campaign progress (banked budget, slices, \
            distinct-schedule growth) from any store.")
      Term.(const run $ campaign_store_t)
  in
  Cmd.group
    (Cmd.info "campaign"
       ~doc:
         "Fleet-scale campaign orchestration: restartable budget-sliced \
          runs, multi-process sharding, adaptive allocation.")
    [ run_cmd; worker_cmd; status_cmd ]

(* store maintenance *)
let store_cmd =
  let into_t =
    let doc = "Destination store directory (created if missing)." in
    Arg.(required & opt (some string) None & info [ "into" ] ~docv:"DIR" ~doc)
  in
  let srcs_t =
    Arg.(
      non_empty & pos_all string []
      & info [] ~docv:"SRC" ~doc:"Source store directories.")
  in
  let merge_cmd =
    let run into srcs =
      let dst = Sct_store.Db.open_ ~dir:into in
      List.iter
        (fun dir ->
          let src = Sct_store.Db.open_ ~dir in
          Sct_store.Db.merge_from dst ~src;
          Sct_store.Db.close src)
        srcs;
      Printf.printf "merged %d store(s) into %s: %d cells (%d finished)\n"
        (List.length srcs) into
        (List.length (Sct_store.Db.entries_any dst))
        (Sct_store.Db.size dst);
      Sct_store.Db.close dst
    in
    Cmd.v
      (Cmd.info "merge"
         ~doc:
           "Fold worker stores into one: copy witness artifacts and keep \
            the most advanced record per cell. Associative, commutative \
            and idempotent, so any merge order yields the same store.")
      Term.(const run $ into_t $ srcs_t)
  in
  let compact_cmd =
    let store_req_t =
      let doc = "The store directory to compact." in
      Arg.(
        required & opt (some string) None & info [ "store" ] ~docv:"DIR" ~doc)
    in
    let run store =
      let db = Sct_store.Db.open_ ~dir:store in
      let before = List.length (Sct_store.Db.entries_any db) in
      Sct_store.Db.compact db;
      Printf.printf "compacted %s: %d record(s) kept\n" store before;
      Sct_store.Db.close db
    in
    Cmd.v
      (Cmd.info "compact"
         ~doc:
           "Atomically rewrite the journal keeping only the latest record \
            per cell, dropping superseded campaign slices and any torn \
            tail. Resume behaviour is unchanged.")
      Term.(const run $ store_req_t)
  in
  Cmd.group
    (Cmd.info "store" ~doc:"Maintain study/campaign store directories.")
    [ merge_cmd; compact_cmd ]

(* recorded bug-witness artifacts *)
let artifacts_cmd =
  let store_req_t =
    let doc = "The study store directory (as given to $(b,--store))." in
    Arg.(
      required & opt (some string) None & info [ "store" ] ~docv:"DIR" ~doc)
  in
  let artifacts_dir store = Filename.concat store "artifacts" in
  let pp_bound = function None -> "-" | Some b -> string_of_int b in
  let list_cmd =
    let run store =
      List.iter
        (fun (a : Sct_store.Artifact.t) ->
          let m = a.Sct_store.Artifact.meta in
          Format.printf "%s  %-28s %-8s bound=%s pc=%d dc=%d  %a@."
            a.Sct_store.Artifact.digest m.Sct_store.Artifact.a_bench
            m.Sct_store.Artifact.a_technique
            (pp_bound m.Sct_store.Artifact.a_bound)
            m.Sct_store.Artifact.a_pc m.Sct_store.Artifact.a_dc
            Sct_core.Outcome.pp_bug m.Sct_store.Artifact.a_bug)
        (Sct_store.Artifact.list ~dir:(artifacts_dir store))
    in
    Cmd.v
      (Cmd.info "list" ~doc:"List the recorded bug-witness artifacts.")
      Term.(const run $ store_req_t)
  in
  let digest_t =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"DIGEST" ~doc:"Artifact digest (from artifacts list).")
  in
  let load_artifact store digest =
    let path = Filename.concat (artifacts_dir store) (digest ^ ".sched") in
    if not (Sys.file_exists path) then begin
      Printf.eprintf "no artifact %s in %s\n" digest store;
      exit 1
    end;
    (* a corrupted or tampered artifact must fail the command, not crash
       with an uncaught exception *)
    match Sct_store.Artifact.load path with
    | a -> a
    | exception Sct_store.Artifact.Error msg ->
        prerr_endline msg;
        exit 1
  in
  let show_cmd =
    let run store digest =
      let a = load_artifact store digest in
      let m = a.Sct_store.Artifact.meta in
      Format.printf "digest:    %s@." a.Sct_store.Artifact.digest;
      Format.printf "benchmark: %s@." m.Sct_store.Artifact.a_bench;
      Format.printf "technique: %s@." m.Sct_store.Artifact.a_technique;
      Format.printf "bound:     %s@." (pp_bound m.Sct_store.Artifact.a_bound);
      Format.printf "bug:       %a (by thread %d)@." Sct_core.Outcome.pp_bug
        m.Sct_store.Artifact.a_bug m.Sct_store.Artifact.a_by;
      Format.printf "pc=%d dc=%d, %d steps@." m.Sct_store.Artifact.a_pc
        m.Sct_store.Artifact.a_dc
        (Sct_core.Schedule.length a.Sct_store.Artifact.schedule);
      Format.printf "schedule:  %a@." Sct_core.Schedule.pp
        a.Sct_store.Artifact.schedule
    in
    Cmd.v
      (Cmd.info "show" ~doc:"Describe one recorded witness.")
      Term.(const run $ store_req_t $ digest_t)
  in
  let replay_cmd =
    let run store digest =
      let a = load_artifact store digest in
      let m = a.Sct_store.Artifact.meta in
      with_bench m.Sct_store.Artifact.a_bench (fun b ->
          (* re-derive the promoted-location set with the options of the run
             that recorded the witness: schedule feasibility depends on it *)
          let o = m.Sct_store.Artifact.a_options in
          let promote =
            Sct_race.Promotion.promote
              (Sct_explore.Techniques.detect_races o b.Sctbench.Bench.program)
          in
          match
            Sct_explore.Replay.replay ~promote
              ~max_steps:o.Sct_explore.Techniques.max_steps
              ~schedule:a.Sct_store.Artifact.schedule b.Sctbench.Bench.program
          with
          | None ->
              print_endline "witness schedule is infeasible for this program";
              exit 1
          | Some r ->
              Format.printf "outcome: %a@." Sct_core.Outcome.pp
                r.Sct_core.Runtime.r_outcome;
              if not (Sct_core.Outcome.is_buggy r.Sct_core.Runtime.r_outcome)
              then begin
                print_endline "witness did NOT reproduce the bug";
                exit 1
              end)
    in
    Cmd.v
      (Cmd.info "replay"
         ~doc:
           "Replay a recorded witness against its benchmark; exits non-zero \
            unless the bug reproduces.")
      Term.(const run $ store_req_t $ digest_t)
  in
  Cmd.group
    (Cmd.info "artifacts"
       ~doc:"Inspect and replay the bug witnesses recorded in a study store.")
    [ list_cmd; show_cmd; replay_cmd ]

let () =
  let cmds =
    [
      list_cmd;
      info_cmd;
      detect_cmd;
      run_cmd;
      replay_cmd;
      minimize_cmd;
      por_cmd;
      fuzz_cmd;
      corpus_cmd;
      campaign_cmd;
      store_cmd;
      artifacts_cmd;
      study_cmd "table1" `Table1 "Regenerate Table 1 (suite overview).";
      study_cmd "table2" `Table2 "Regenerate Table 2 (trivial benchmarks).";
      study_cmd "table3" `Table3 "Regenerate Table 3 (full results).";
      study_cmd "fig2" `Fig2 "Regenerate Figure 2 (Venn diagrams).";
      study_cmd "fig3" `Fig3 "Regenerate Figure 3 (schedules to first bug).";
      study_cmd "fig4" `Fig4 "Regenerate Figure 4 (worst-case schedules).";
      study_cmd "agreement" `Agreement
        "Paper-vs-measured bug-finding agreement only.";
      study_cmd "csv" `Csv "Export the Table 3 data as CSV.";
    ]
  in
  let info =
    Cmd.info "sctbench_run" ~version:"1.0.0"
      ~doc:
        "Systematic concurrency testing on SCTBench: schedule bounding \
         study reproduction."
  in
  exit (Cmd.eval (Cmd.group info cmds))
