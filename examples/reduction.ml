(* Partial-order reduction at work (the paper's §8 future work).

   Explores the same program with plain DFS, sleep sets, classic DPOR and
   their combination, printing how many schedules each needs to cover the
   behaviourally distinct interleavings — and shows that the bug survives
   every reduction.

     dune exec examples/reduction.exe *)

open Sct_core

(* A small pipeline: two independent producers fill disjoint cells, a
   combiner (incorrectly) snapshots both without locks. Most interleavings
   differ only by commuting independent writes — exactly what POR prunes. *)
let program () =
  let a = Sct.Var.make ~name:"cell_a" 0 in
  let b = Sct.Var.make ~name:"cell_b" 0 in
  let p1 =
    Sct.spawn (fun () ->
        for i = 1 to 3 do
          Sct.Var.write a i
        done)
  in
  let p2 =
    Sct.spawn (fun () ->
        for i = 1 to 3 do
          Sct.Var.write b i
        done)
  in
  let combiner =
    Sct.spawn (fun () ->
        let va = Sct.Var.read a in
        let vb = Sct.Var.read b in
        (* BUG: the snapshot is not atomic; a torn (3,0)/(0,3) pair is
           possible *)
        Sct.check (abs (va - vb) <= 2) "torn snapshot")
  in
  Sct.join p1;
  Sct.join p2;
  Sct.join combiner

let promote_all _ = true

let () =
  let dfs =
    Sct_explore.Dfs.explore ~promote:promote_all
      ~bound:Sct_explore.Dfs.Unbounded ~limit:1_000_000 program
  in
  Printf.printf "plain DFS : %6d schedules, %d buggy, complete=%b\n"
    dfs.Sct_explore.Dfs.counted dfs.Sct_explore.Dfs.buggy
    dfs.Sct_explore.Dfs.complete;
  List.iter
    (fun (name, mode) ->
      let r =
        Sct_explore.Por.explore ~promote:promote_all ~mode ~limit:1_000_000
          program
      in
      Printf.printf
        "%-10s: %6d schedules (+%d pruned), %d buggy, complete=%b%s\n" name
        r.Sct_explore.Por.counted r.Sct_explore.Por.pruned_sleep
        r.Sct_explore.Por.buggy r.Sct_explore.Por.complete
        (match r.Sct_explore.Por.to_first_bug with
        | Some i -> Printf.sprintf " (first bug at schedule %d)" i
        | None -> ""))
    [
      ("sleep sets", Sct_explore.Por.Sleep);
      ("dpor", Sct_explore.Por.Dpor);
      ("dpor+sleep", Sct_explore.Por.Dpor_sleep);
    ];
  print_newline ();
  print_endline
    "All modes find the torn snapshot; the reductions discard only\n\
     interleavings that differ by commuting independent operations.\n\
     The paper's conclusion names exactly this combination — bounding\n\
     plus partial-order reduction — as the open research direction."
