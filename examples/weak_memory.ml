(* Weak memory: exploring TSO store-buffer reorderings systematically.

   The study explores sequentially consistent outcomes only and notes that
   bugs depending on relaxed memory effects are missed (paper §5); its
   hardest benchmark (safestack) comes from the weak-memory world. This
   example runs the classic store-buffering litmus under both memory models
   and shows the outcome Dekker-style mutual exclusion relies on being
   impossible — and how it appears under TSO, and disappears again with a
   fence.

     dune exec examples/weak_memory.exe *)

open Sct_core

module Outcomes = Set.Make (struct
  type t = int * int

  let compare = compare
end)

let promote_all _ = true

let collect mk =
  let outcomes = ref Outcomes.empty in
  let program () =
    let r = mk () in
    outcomes := Outcomes.add r !outcomes
  in
  let r =
    Sct_explore.Por.explore ~promote:promote_all
      ~mode:Sct_explore.Por.Dpor_sleep ~limit:500_000 program
  in
  assert r.Sct_explore.Por.complete;
  (!outcomes, r.Sct_explore.Por.counted)

let show (outcomes, n) =
  Printf.sprintf "{%s} (%d schedules explored)"
    (String.concat ", "
       (List.map
          (fun (a, b) -> Printf.sprintf "(%d,%d)" a b)
          (Outcomes.elements outcomes)))
    n

(* SB under sequential consistency. *)
let sb_sc () =
  let x = Sct.Var.make ~name:"x" 0 and y = Sct.Var.make ~name:"y" 0 in
  let r1 = ref (-1) and r2 = ref (-1) in
  let t1 =
    Sct.spawn (fun () ->
        Sct.Var.write x 1;
        r1 := Sct.Var.read y)
  in
  let t2 =
    Sct.spawn (fun () ->
        Sct.Var.write y 1;
        r2 := Sct.Var.read x)
  in
  Sct.join t1;
  Sct.join t2;
  (!r1, !r2)

(* The same program through TSO store buffers, optionally fenced. *)
let sb_tso ~fenced () =
  let ctx = Sct_tso.Tso.create () in
  let x = Sct_tso.Tso.Var.make ctx ~name:"x" 0 in
  let y = Sct_tso.Tso.Var.make ctx ~name:"y" 0 in
  let r1 = ref (-1) and r2 = ref (-1) in
  let _ =
    Sct_tso.Tso.thread ctx (fun () ->
        Sct_tso.Tso.Var.store x 1;
        if fenced then Sct_tso.Tso.fence ctx;
        r1 := Sct_tso.Tso.Var.load y)
  in
  let _ =
    Sct_tso.Tso.thread ctx (fun () ->
        Sct_tso.Tso.Var.store y 1;
        if fenced then Sct_tso.Tso.fence ctx;
        r2 := Sct_tso.Tso.Var.load x)
  in
  Sct_tso.Tso.finish ctx;
  (!r1, !r2)

let () =
  print_endline "store-buffering litmus: T1: x:=1; r1:=y   T2: y:=1; r2:=x";
  print_newline ();
  Printf.printf "sequential consistency : %s\n" (show (collect sb_sc));
  Printf.printf "TSO store buffers      : %s\n"
    (show (collect (sb_tso ~fenced:false)));
  Printf.printf "TSO + mfence           : %s\n"
    (show (collect (sb_tso ~fenced:true)));
  print_newline ();
  print_endline
    "Under SC the outcome (0,0) never appears: some store always precedes\n\
     both loads. With store buffers each thread can read the other's\n\
     variable before either buffered store drains, so (0,0) becomes\n\
     observable — this is why Dekker-style mutual exclusion needs fences\n\
     on x86. With mfence after the stores, the SC outcome set returns."
