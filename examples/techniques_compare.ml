(* Compare the bug-finding techniques across a whole suite.

   Runs the study pipeline on every benchmark of one SCTBench suite
   (default: splash2; pass another suite name as the first argument) and
   prints the per-technique verdicts side by side with the paper's Table 3.

     dune exec examples/techniques_compare.exe -- CS 2000 *)

let () =
  let suite_name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "splash2" in
  let limit =
    if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 5_000
  in
  let suite =
    match Sctbench.Bench.suite_of_name suite_name with
    | Some s -> s
    | None -> failwith ("unknown suite: " ^ suite_name)
  in
  let benches = Sctbench.Registry.of_suite suite in
  Printf.printf "suite %s: %d benchmarks, limit %d schedules/technique\n\n"
    suite_name (List.length benches) limit;
  let o =
    { Sct_explore.Techniques.default_options with Sct_explore.Techniques.limit }
  in
  Printf.printf "%-28s | %-22s | %-22s\n" "benchmark" "ours (I/D/F/R/M)"
    "paper (I/D/F/R/M)";
  List.iter
    (fun (b : Sctbench.Bench.t) ->
      let row = Sct_report.Run_data.run_benchmark o b in
      let mark t =
        if Sct_report.Run_data.found_by row t then "+" else "."
      in
      let ours =
        String.concat ""
          (List.map mark
             Sct_explore.Techniques.
               [ IPB; IDB; DFS; Rand; Maple ])
      in
      let p = b.Sctbench.Bench.paper in
      let pm cond = if cond then "+" else "." in
      let paper =
        pm (p.Sctbench.Bench.p_ipb_bound <> None)
        ^ pm (p.Sctbench.Bench.p_idb_bound <> None)
        ^ pm p.Sctbench.Bench.p_dfs_found
        ^ pm p.Sctbench.Bench.p_rand_found
        ^ pm p.Sctbench.Bench.p_maple_found
      in
      Printf.printf "%-28s | %-22s | %-22s%s\n" b.Sctbench.Bench.name ours
        paper
        (if ours = paper then "" else "   <- deviation"))
    benches
