(* Testing a lock-free-ish data structure: the CHESS work-stealing queue.

   Runs the study's five techniques on the seeded THE-protocol deque
   (chess.WSQ) and prints how many terminal schedules each needed — the
   per-benchmark view behind the paper's Figure 3.

     dune exec examples/work_stealing.exe *)

let () =
  let bench =
    match Sctbench.Registry.by_name "chess.WSQ" with
    | Some b -> b
    | None -> failwith "chess.WSQ missing from the registry"
  in
  Printf.printf "%s\n%s\n\n" bench.Sctbench.Bench.name
    bench.Sctbench.Bench.description;
  let o =
    { Sct_explore.Techniques.default_options with Sct_explore.Techniques.limit = 10_000 }
  in
  let detection, results = Sct_explore.Techniques.run_all o bench.Sctbench.Bench.program in
  Printf.printf "racy locations: %s\n\n"
    (String.concat ", " detection.Sct_race.Promotion.racy);
  Printf.printf "%-10s %-8s %-14s %-10s %s\n" "technique" "found?"
    "schedules-to-bug" "bound" "witness (pc/dc)";
  List.iter
    (fun (t, s) ->
      let first =
        match s.Sct_explore.Stats.to_first_bug with
        | Some i -> string_of_int i
        | None -> "-"
      in
      let bound =
        match s.Sct_explore.Stats.bound with
        | Some b -> string_of_int b
        | None -> "-"
      in
      let witness =
        match s.Sct_explore.Stats.first_bug with
        | Some w ->
            Printf.sprintf "%d/%d" w.Sct_explore.Stats.w_pc
              w.Sct_explore.Stats.w_dc
        | None -> "-"
      in
      Printf.printf "%-10s %-8s %-14s %-10s %s\n"
        (Sct_explore.Techniques.name t)
        (if Sct_explore.Stats.found s then "yes" else "no")
        first bound witness)
    results;
  print_newline ();
  print_endline
    "The bug needs the thief's locked steal interleaved into the owner's\n\
     stale-head pop window. Depth-first search drowns in the deep\n\
     interleavings of the 20+-item workload and the idiom-forcing\n\
     heuristic cannot compose the multi-step window, while both bounding\n\
     techniques reach the bug at a small bound and the random scheduler\n\
     stumbles into it within a few thousand runs — the Table 3 row's\n\
     exact shape."
