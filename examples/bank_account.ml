(* Writing your own systematic concurrency test.

   A tiny bank-account service with a seeded atomicity violation: the
   balance check and the withdrawal are separate critical sections, so two
   concurrent withdrawals can both pass the check and overdraw the account.
   The example walks the full study pipeline on it: race detection,
   exhaustive verification of the fixed version, and bounded search plus a
   readable witness trace for the buggy one.

     dune exec examples/bank_account.exe *)

open Sct_core

(* The account under test; [atomic_withdraw] selects the fixed variant. *)
let account_service ~atomic_withdraw () =
  let balance = Sct.Var.make ~name:"balance" 100 in
  let m = Sct.Mutex.create () in
  let overdraft = Sct.Var.make ~name:"overdraft" false in
  let withdraw amount =
    if atomic_withdraw then begin
      Sct.Mutex.lock m;
      let b = Sct.Var.read balance in
      if b >= amount then Sct.Var.write balance (b - amount);
      Sct.Mutex.unlock m
    end
    else begin
      (* BUG: check and act in separate critical sections *)
      Sct.Mutex.lock m;
      let b = Sct.Var.read balance in
      Sct.Mutex.unlock m;
      if b >= amount then begin
        Sct.Mutex.lock m;
        Sct.Var.write balance (Sct.Var.read balance - amount);
        Sct.Mutex.unlock m
      end
    end;
    if Sct.Var.read balance < 0 then Sct.Var.write overdraft true
  in
  let t1 = Sct.spawn (fun () -> withdraw 80) in
  let t2 = Sct.spawn (fun () -> withdraw 60) in
  Sct.join t1;
  Sct.join t2;
  Sct.check (not (Sct.Var.read overdraft)) "account overdrawn"

let explore name program =
  Printf.printf "--- %s ---\n" name;
  let detection = Sct_race.Promotion.detect ~runs:10 program in
  Printf.printf "racy locations: [%s]\n"
    (String.concat "; " detection.Sct_race.Promotion.racy);
  let promote = Sct_race.Promotion.promote detection in
  let idb =
    Sct_explore.Bounded.explore ~promote
      ~kind:Sct_explore.Bounded.Delay_bounding ~limit:100_000 program
  in
  Format.printf "IDB: %a@." Sct_explore.Stats.pp idb;
  match idb.Sct_explore.Stats.first_bug with
  | None ->
      if idb.Sct_explore.Stats.complete then
        print_endline "VERIFIED: the whole schedule space is bug-free"
  | Some w ->
      Format.printf "COUNTEREXAMPLE (%d delays): %a@."
        w.Sct_explore.Stats.w_dc Outcome.pp_bug w.Sct_explore.Stats.w_bug;
      Format.printf "schedule: %a@." Schedule.pp w.Sct_explore.Stats.w_schedule

let () =
  explore "buggy withdraw (check-then-act)" (account_service ~atomic_withdraw:false);
  print_newline ();
  explore "fixed withdraw (atomic)" (account_service ~atomic_withdraw:true)
