(* Quickstart: the worked example of the paper (Figure 1).

   T0 creates three threads: T1 writes x then y, T2 writes z, and T3 asserts
   x = y. The assertion can only fail when T3 reads between T1's two writes —
   a schedule with one preemption (one delay), which bound-0 search provably
   cannot reach.

     dune exec examples/quickstart.exe *)

open Sct_core

let figure1 () =
  let x = Sct.Var.make ~name:"x" 0 in
  let y = Sct.Var.make ~name:"y" 0 in
  let z = Sct.Var.make ~name:"z" 0 in
  let t1 =
    Sct.spawn (fun () ->
        Sct.Var.write x 1;
        Sct.Var.write y 1)
  in
  let t2 = Sct.spawn (fun () -> Sct.Var.write z 1) in
  let t3 =
    Sct.spawn (fun () ->
        let vx = Sct.Var.read x in
        let vy = Sct.Var.read y in
        Sct.check (vx = vy) "assert x == y")
  in
  ignore (t1, t2, t3)

let () =
  (* Phase 1: find the racy locations (all of x, y, z here). *)
  let detection = Sct_race.Promotion.detect ~runs:10 figure1 in
  Printf.printf "racy locations: %s\n"
    (String.concat ", " detection.Sct_race.Promotion.racy);
  let promote = Sct_race.Promotion.promote detection in

  (* Phase 2: iterative delay bounding. *)
  let idb =
    Sct_explore.Bounded.explore ~promote ~kind:Sct_explore.Bounded.Delay_bounding
      ~limit:10_000 figure1
  in
  Format.printf "IDB: %a@." Sct_explore.Stats.pp idb;
  (match idb.Sct_explore.Stats.first_bug with
  | Some w ->
      Format.printf "bug found at delay bound %d: %a@."
        (Option.value ~default:(-1) idb.Sct_explore.Stats.bound)
        Outcome.pp_bug w.Sct_explore.Stats.w_bug;
      Format.printf "witness schedule (%d steps, pc=%d, dc=%d): %a@."
        (Schedule.length w.Sct_explore.Stats.w_schedule)
        w.Sct_explore.Stats.w_pc w.Sct_explore.Stats.w_dc Schedule.pp
        w.Sct_explore.Stats.w_schedule
  | None -> print_endline "no bug found (unexpected!)");

  (* For contrast: a delay bound of zero explores exactly one schedule (the
     deterministic round-robin one) and finds nothing. *)
  let level0 =
    Sct_explore.Dfs.explore ~promote ~bound:(Sct_explore.Dfs.Delay 0)
      ~limit:10_000 figure1
  in
  Printf.printf
    "delay bound 0: %d schedule(s), %d buggy — the bug needs one delay\n"
    level0.Sct_explore.Dfs.counted level0.Sct_explore.Dfs.buggy
