(* The benchmark harness: regenerates every table and figure of the paper's
   evaluation (§6) and times the machinery with Bechamel.

   Usage:
     dune exec bench/main.exe                      (full study, limit 10000)
     dune exec bench/main.exe -- --limit 2000      (quicker study)
     dune exec bench/main.exe -- table3 fig2       (selected sections)
     dune exec bench/main.exe -- --jobs 4 table3   (parallel study run)
     dune exec bench/main.exe -- perf              (Bechamel timings only)
     dune exec bench/main.exe -- perf --out BENCH_engine.json
                                                   (machine-readable timings)
     dune exec bench/main.exe -- perf --out BENCH_engine.json \
       --baseline bench/BASELINE_engine.json [--baseline-factor 2.0]
                             (also fail on a regression beyond the factor)

   Sections: table1 table2 table3 fig2 fig3 fig4 por pct steps jobs perf
   (default: all). [--out]/[--baseline] imply the steps, jobs and perf
   sections; see BENCHMARKS.md for the JSON schema. *)

open Bechamel
open Toolkit

let sections, limit, seed, jobs, out_file, baseline_file, baseline_factor =
  let sections = ref [] in
  let limit = ref 10_000 in
  let seed = ref 0 in
  let jobs = ref 0 in
  let out_file = ref None in
  let baseline_file = ref None in
  let baseline_factor = ref 2.0 in
  let rec parse = function
    | [] -> ()
    | "--limit" :: v :: rest ->
        limit := int_of_string v;
        parse rest
    | "--seed" :: v :: rest ->
        seed := int_of_string v;
        parse rest
    | "--jobs" :: v :: rest ->
        jobs := int_of_string v;
        parse rest
    | "--out" :: v :: rest ->
        out_file := Some v;
        parse rest
    | "--baseline" :: v :: rest ->
        baseline_file := Some v;
        parse rest
    | "--baseline-factor" :: v :: rest ->
        baseline_factor := float_of_string v;
        parse rest
    | s :: rest ->
        sections := s :: !sections;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let all =
    [
      "table1"; "table2"; "table3"; "fig2"; "fig3"; "fig4"; "por"; "pct";
      "steps"; "jobs"; "perf";
    ]
  in
  let sections = if !sections = [] then all else List.rev !sections in
  let sections =
    (* the JSON artifact and the regression check are built from the perf,
       steps and jobs-sweep measurements, so those flags imply all three
       sections (steps before jobs: the sweep spawns worker domains, which
       permanently switches the batched executor to its fallback) *)
    if !out_file <> None || !baseline_file <> None then
      sections
      @ List.filter
          (fun s -> not (List.mem s sections))
          [ "steps"; "jobs"; "perf" ]
    else sections
  in
  let jobs = if !jobs <= 0 then Sct_parallel.Pool.default_jobs () else !jobs in
  (sections, !limit, !seed, jobs, !out_file, !baseline_file, !baseline_factor)

let wants s = List.mem s sections

let options =
  { Sct_explore.Techniques.default_options with
    Sct_explore.Techniques.limit; seed; jobs }

(* The full study run is shared by table2/table3/fig2/fig3/fig4. The rows
   are identical for every [jobs] value (see lib/parallel). *)
let study_rows =
  lazy
    (let progress (b : Sctbench.Bench.t) =
       Printf.eprintf "[%2d/52] %s...\n%!" b.Sctbench.Bench.id
         b.Sctbench.Bench.name
     in
     Sct_parallel.Pool.with_pool ~jobs (fun pool ->
         Sct_parallel.Suite.run_all ~pool ~progress options
           Sctbench.Registry.all))

let hr title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

(* Wall-clock per executed section, in execution order; part of the
   BENCH_engine.json artifact. *)
let section_timings : (string * float) list ref = ref []

let timed name f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  section_timings := !section_timings @ [ (name, Unix.gettimeofday () -. t0) ];
  r

(* --- Bechamel micro-benchmarks --- *)

let rr_scheduler (ctx : Sct_core.Runtime.ctx) =
  match ctx.c_enabled with
  | [ t ] -> t
  | enabled -> (
      match
        Sct_core.Delay.deterministic_choice ~n:ctx.c_n_threads
          ~last:ctx.c_last ~enabled
      with
      | Some t -> t
      | None -> assert false)

let bench_program name =
  match Sctbench.Registry.by_name name with
  | Some b -> b.Sctbench.Bench.program
  | None -> failwith ("missing benchmark " ^ name)

let promote_all _ = true

let perf_tests () =
  let small = bench_program "CS.twostage_bad" in
  let wsq = bench_program "chess.WSQ" in
  let engine =
    Test.make_grouped ~name:"engine"
      [
        Test.make ~name:"rr-execution/twostage"
          (Staged.stage (fun () ->
               Sys.opaque_identity
                 (Sct_core.Runtime.exec ~promote:promote_all
                    ~record_decisions:false ~scheduler:rr_scheduler small)));
        Test.make ~name:"rr-execution/wsq"
          (Staged.stage (fun () ->
               Sys.opaque_identity
                 (Sct_core.Runtime.exec ~promote:promote_all
                    ~record_decisions:false ~scheduler:rr_scheduler wsq)));
        Test.make ~name:"rr-execution/spinwait"
          (Staged.stage (fun () ->
               Sys.opaque_identity
                 (Sct_core.Runtime.exec ~promote:promote_all
                    ~record_decisions:false ~scheduler:rr_scheduler
                    (bench_program "yield.spinwait_bad"))));
      ]
  in
  let yield_loops =
    (* the yield-loop family under the execution-level bounding axes: the
       cost of cutting spin subtrees rather than enumerating them *)
    let spin = bench_program "yield.spinwait_bad" in
    let cas = bench_program "yield.cas_yield_bad" in
    Test.make_grouped ~name:"yield-loops"
      [
        Test.make ~name:"fair-bounding/spinwait"
          (Staged.stage (fun () ->
               Sys.opaque_identity
                 (Sct_explore.Driver.explore ~promote:promote_all ~limit:300
                    (Sct_explore.Axes.fair ()) spin)));
        Test.make ~name:"length-bounding/cas-yield"
          (Staged.stage (fun () ->
               Sys.opaque_identity
                 (Sct_explore.Driver.explore ~promote:promote_all ~limit:300
                    (Sct_explore.Axes.length ()) cas)));
      ]
  in
  let techniques =
    (* per-technique cost of exploring (up to) 25 terminal schedules of the
       same benchmark: the ablation view of the study's engine *)
    Test.make_grouped ~name:"schedules-25"
      [
        Test.make ~name:"dfs"
          (Staged.stage (fun () ->
               Sys.opaque_identity
                 (Sct_explore.Dfs.explore ~promote:promote_all
                    ~bound:Sct_explore.Dfs.Unbounded ~limit:25 small)));
        Test.make ~name:"ipb"
          (Staged.stage (fun () ->
               Sys.opaque_identity
                 (Sct_explore.Bounded.explore ~promote:promote_all
                    ~kind:Sct_explore.Bounded.Preemption_bounding ~limit:25
                    small)));
        Test.make ~name:"idb"
          (Staged.stage (fun () ->
               Sys.opaque_identity
                 (Sct_explore.Bounded.explore ~promote:promote_all
                    ~kind:Sct_explore.Bounded.Delay_bounding ~limit:25 small)));
        Test.make ~name:"rand"
          (Staged.stage (fun () ->
               Sys.opaque_identity
                 (Sct_explore.Random_walk.explore ~promote:promote_all ~seed:1
                    ~runs:25 small)));
        Test.make ~name:"pct"
          (Staged.stage (fun () ->
               Sys.opaque_identity
                 (Sct_explore.Pct.explore ~promote:promote_all ~seed:1
                    ~runs:25 small)));
        Test.make ~name:"surw"
          (Staged.stage (fun () ->
               Sys.opaque_identity
                 (Sct_explore.Surw.explore ~promote:promote_all ~seed:1
                    ~runs:25 small)));
        (* MapleLite's campaign length is intrinsic (profiling runs plus one
           active run per candidate); the budget below makes it comparable
           to the other 25-schedule rows on this benchmark *)
        Test.make ~name:"maple"
          (Staged.stage (fun () ->
               Sys.opaque_identity
                 (Sct_explore.Maple_lite.explore ~promote:promote_all
                    ~profile_runs:10 ~seed:1 small)));
      ]
  in
  let race =
    Test.make_grouped ~name:"race-detection"
      [
        Test.make ~name:"one-round/twostage"
          (Staged.stage (fun () ->
               Sys.opaque_identity
                 (Sct_race.Promotion.detect ~runs:1 ~max_rounds:1 small)));
        Test.make ~name:"fixpoint/twostage"
          (Staged.stage (fun () ->
               Sys.opaque_identity (Sct_race.Promotion.detect ~runs:2 small)));
      ]
  in
  let parallel =
    (* the domain-pool engine on a 3-benchmark slice: jobs=1 falls back to
       the sequential code, jobs=4 exercises pool + merging (the measured
       time includes pool setup/teardown, as a real run would) *)
    let o =
      { Sct_explore.Techniques.default_options with
        Sct_explore.Techniques.limit = 200 }
    in
    let pick n = Option.get (Sctbench.Registry.by_name n) in
    let slice () =
      [ pick "CS.lazy01_bad"; pick "CS.twostage_bad"; pick "CS.reorder_3_bad" ]
    in
    let suite_with jobs () =
      Sys.opaque_identity
        (Sct_parallel.Pool.with_pool ~jobs (fun pool ->
             Sct_parallel.Suite.run_all ~pool o (slice ())))
    in
    Test.make_grouped ~name:"parallel"
      [
        Test.make ~name:"suite-slice/jobs-1" (Staged.stage (suite_with 1));
        Test.make ~name:"suite-slice/jobs-4" (Staged.stage (suite_with 4));
      ]
  in
  (* one Bechamel test per table/figure generator (on a 3-benchmark slice) *)
  let mini_rows =
    lazy
      (let o =
         { Sct_explore.Techniques.default_options with
           Sct_explore.Techniques.limit = 200 }
       in
       let pick n = Option.get (Sctbench.Registry.by_name n) in
       Sct_report.Run_data.run_all o
         [ pick "CS.lazy01_bad"; pick "CS.twostage_bad"; pick "splash2.fft" ])
  in
  let null_out = Format.make_formatter (fun _ _ _ -> ()) (fun () -> ()) in
  let tables =
    Test.make_grouped ~name:"reports"
      [
        Test.make ~name:"table1"
          (Staged.stage (fun () ->
               Sct_report.Table1.print ~out:null_out Sctbench.Registry.all));
        Test.make ~name:"table2"
          (Staged.stage (fun () ->
               Sct_report.Table2.print ~out:null_out ~limit:200
                 (Lazy.force mini_rows)));
        Test.make ~name:"table3"
          (Staged.stage (fun () ->
               Sct_report.Table3.print ~out:null_out ~limit:200
                 (Lazy.force mini_rows)));
        Test.make ~name:"fig2"
          (Staged.stage (fun () ->
               Sct_report.Venn.print_figure2 ~out:null_out
                 (Lazy.force mini_rows)));
        Test.make ~name:"fig3"
          (Staged.stage (fun () ->
               Sct_report.Figures.print_figure3 ~out:null_out ~limit:200
                 (Lazy.force mini_rows)));
        Test.make ~name:"fig4"
          (Staged.stage (fun () ->
               Sct_report.Figures.print_figure4 ~out:null_out ~limit:200
                 (Lazy.force mini_rows)));
      ]
  in
  Test.make_grouped ~name:"sctbench"
    [ engine; techniques; yield_loops; race; parallel; tables ]

(* Extension ablation 1 (paper §8 future work): partial-order reduction.
   POR needs complete dependence information, so every location is promoted
   and the comparison baseline is plain unbounded DFS under the same
   promotion. *)
let run_por () =
  hr "Extension: partial-order reduction vs. plain DFS (all locations visible)";
  Printf.printf "%-28s %9s %9s %9s %9s %11s %s\n" "benchmark" "DFS" "hb-cls"
    "sleep" "dpor" "dpor+sleep" "(schedules / 'L' = limit; * = bug found)";
  let subset =
    [
      "CS.account_bad";
      "CS.bluetooth_driver_bad";
      "CS.deadlock01_bad";
      "CS.lazy01_bad";
      "CS.reorder_3_bad";
      "CS.stack_bad";
      "CS.twostage_bad";
      "CS.wronglock_3_bad";
      "misc.ctrace-test";
      "splash2.fft";
      "splash2.lu";
    ]
  in
  List.iter
    (fun name ->
      let program = bench_program name in
      let show_d (r : Sct_explore.Dfs.level_result) =
        Printf.sprintf "%s%s"
          (if r.Sct_explore.Dfs.hit_limit then "L"
           else string_of_int r.Sct_explore.Dfs.counted)
          (if r.Sct_explore.Dfs.to_first_bug <> None then "*" else "")
      in
      let show_p (r : Sct_explore.Por.result) =
        Printf.sprintf "%s%s"
          (if r.Sct_explore.Por.hit_limit then "L"
           else string_of_int r.Sct_explore.Por.counted)
          (if r.Sct_explore.Por.to_first_bug <> None then "*" else "")
      in
      let d =
        Sct_explore.Dfs.explore ~promote:promote_all
          ~bound:Sct_explore.Dfs.Unbounded ~limit program
      in
      (* distinct happens-before classes among the DFS schedules: the
         redundancy HB caching / POR removes (paper §7) *)
      let _, hb_classes =
        Sct_explore.Hb_signature.distinct_under_dfs ~promote:promote_all
          ~limit program
      in
      let p mode = Sct_explore.Por.explore ~promote:promote_all ~mode ~limit program in
      Printf.printf "%-28s %9s %9d %9s %9s %11s\n" name (show_d d) hb_classes
        (show_p (p Sct_explore.Por.Sleep))
        (show_p (p Sct_explore.Por.Dpor))
        (show_p (p Sct_explore.Por.Dpor_sleep)))
    subset

(* Extension ablation 2 (paper §7 related work): PCT vs. the naive random
   scheduler, under the same budget and the study's promotion sets. *)
let run_pct () =
  hr "Extension: PCT vs. naive random scheduling";
  Printf.printf "%-28s | %-18s | %-18s\n" "benchmark" "Rand first/buggy"
    "PCT first/buggy";
  let o = options in
  List.iter
    (fun name ->
      let b = Option.get (Sctbench.Registry.by_name name) in
      let detection =
        Sct_explore.Techniques.detect_races o b.Sctbench.Bench.program
      in
      let promote = Sct_race.Promotion.promote detection in
      let show (s : Sct_explore.Stats.t) =
        Printf.sprintf "%s/%d"
          (match s.Sct_explore.Stats.to_first_bug with
          | Some i -> string_of_int i
          | None -> "-")
          s.Sct_explore.Stats.buggy
      in
      let rand =
        Sct_explore.Techniques.run ~promote o Sct_explore.Techniques.Rand
          b.Sctbench.Bench.program
      in
      let pct =
        Sct_explore.Techniques.run ~promote o Sct_explore.Techniques.PCT
          b.Sctbench.Bench.program
      in
      Printf.printf "%-28s | %-18s | %-18s\n" name (show rand) (show pct))
    [
      "CB.stringbuffer-jdk1.4";
      "CS.reorder_4_bad";
      "CS.wronglock_bad";
      "chess.WSQ";
      "inspect.qsort_mt";
      "parsec.ferret";
      "radbench.bug2";
      "radbench.bug4";
      "misc.safestack";
    ]

(* Prefix-batched executor: scheduling steps actually executed vs. the
   classic one-execution-per-schedule driver. The counters are analytic
   (executed + saved = the unbatched driver's steps), so the recorded
   factors are identical for the fork-server and fallback back-ends — the
   section prints which one it measured. CS.reorder_10_bad exhausts the
   schedule limit for all three tree techniques, which is exactly where
   shared prefixes dominate; campaigns that stop at an early bug have no
   prefix to share and would only dilute the gate. *)
let steps_benches = [ "CS.reorder_10_bad" ]

let run_steps () =
  hr "Prefix-batched executor: steps executed vs. per-schedule re-execution";
  let o = { options with Sct_explore.Techniques.prefix_batch = true } in
  Printf.printf "limit %d, backend: %s\n" limit
    (if Sct_explore.Prefix_exec.fork_available () then "fork server"
     else "portable fallback");
  Printf.printf "%-6s %12s %12s %12s %8s\n" "tech" "executed" "saved"
    "unbatched" "factor";
  List.map
    (fun t ->
      let executed, saved =
        List.fold_left
          (fun (e, s) bname ->
            let program = bench_program bname in
            let promote =
              Sct_race.Promotion.promote
                (Sct_explore.Techniques.detect_races o program)
            in
            let st = Sct_explore.Techniques.run ~promote o t program in
            ( e + st.Sct_explore.Stats.steps_executed,
              s + st.Sct_explore.Stats.steps_saved ))
          (0, 0) steps_benches
      in
      let key = String.lowercase_ascii (Sct_explore.Techniques.name t) in
      Printf.printf "%-6s %12d %12d %12d %7.2fx\n%!" key executed saved
        (executed + saved)
        (float_of_int (executed + saved) /. float_of_int (max 1 executed));
      (key, executed, saved))
    [
      Sct_explore.Techniques.DFS;
      Sct_explore.Techniques.IPB;
      Sct_explore.Techniques.IDB;
    ]

(* Wall-clock scaling of the parallel engine: the same suite slice at
   jobs in {1, 2, 4, 8}, checking along the way that every row is identical
   to the sequential run (the engine's determinism guarantee). *)
let run_jobs () =
  hr "Parallel engine: jobs sweep (wall-clock, CS suite)";
  let benches =
    List.filter
      (fun (b : Sctbench.Bench.t) ->
        b.Sctbench.Bench.suite = Sctbench.Bench.CS)
      Sctbench.Registry.all
  in
  let o =
    { options with Sct_explore.Techniques.limit = min limit 1_000 }
  in
  let time jobs =
    let t0 = Unix.gettimeofday () in
    let rows =
      Sct_parallel.Pool.with_pool ~jobs (fun pool ->
          Sct_parallel.Suite.run_all ~pool o benches)
    in
    (rows, Unix.gettimeofday () -. t0)
  in
  let rows_equal a b =
    List.for_all2
      (fun (a : Sct_report.Run_data.row) (b : Sct_report.Run_data.row) ->
        a.Sct_report.Run_data.racy_locations
        = b.Sct_report.Run_data.racy_locations
        && List.for_all2
             (fun (t, s) (t', s') ->
               t = t' && Sct_explore.Stats.equal s s')
             a.Sct_report.Run_data.results b.Sct_report.Run_data.results)
      a b
  in
  Printf.printf "limit %d, %d benchmarks\n" o.Sct_explore.Techniques.limit
    (List.length benches);
  Printf.printf "%6s %10s %9s  %s\n" "jobs" "seconds" "speedup" "rows";
  let base_rows, base_dt = time 1 in
  Printf.printf "%6d %10.2f %8.2fx  %s\n%!" 1 base_dt 1.0 "baseline";
  (1, base_dt, 1.0, true)
  :: List.map
       (fun jobs ->
         let rows, dt = time jobs in
         let identical = rows_equal base_rows rows in
         Printf.printf "%6d %10.2f %8.2fx  %s\n%!" jobs dt (base_dt /. dt)
           (if identical then "identical" else "DIFFERENT (bug!)");
         (jobs, dt, base_dt /. dt, identical))
       [ 2; 4; 8 ]

let run_perf () =
  hr "Bechamel timings";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 500) ()
  in
  let raw = Benchmark.all cfg instances (perf_tests ()) in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name result acc ->
        match Analyze.OLS.estimates result with
        | Some [ est ] -> (name, est) :: acc
        | _ -> (name, nan) :: acc)
      results []
  in
  let rows = List.sort compare rows in
  List.iter
    (fun (name, est) ->
      if est >= 1e6 then Printf.printf "%-55s %10.2f ms/run\n" name (est /. 1e6)
      else if est >= 1e3 then
        Printf.printf "%-55s %10.2f us/run\n" name (est /. 1e3)
      else Printf.printf "%-55s %10.1f ns/run\n" name est)
    rows;
  rows

(* --- machine-readable perf trajectory (BENCH_engine.json) --- *)

(* Steps per execution under the deterministic scheduler: converts Bechamel
   ns/run estimates into the headline steps/sec numbers. *)
let steps_per_exec program =
  (Sct_core.Runtime.exec ~promote:promote_all ~record_decisions:false
     ~scheduler:rr_scheduler program)
    .Sct_core.Runtime.r_steps

let engine_benchmarks =
  [
    ("rr-execution/twostage", "CS.twostage_bad");
    ("rr-execution/wsq", "chess.WSQ");
    ("rr-execution/spinwait", "yield.spinwait_bad");
  ]

let find_perf perf_rows suffix =
  List.find_opt (fun (n, _) -> String.ends_with ~suffix n) perf_rows
  |> Option.map snd

let bench_json ~perf_rows ~jobs_sweep ~steps_rows =
  let open Sct_store.Json in
  let ns_int f = max 1 (int_of_float (Float.round f)) in
  let engine =
    List.filter_map
      (fun (key, bench) ->
        match find_perf perf_rows key with
        | None -> None
        | Some ns ->
            let steps = steps_per_exec (bench_program bench) in
            Some
              ( key,
                Obj
                  [
                    ("ns_per_run", Int (ns_int ns));
                    ("steps_per_exec", Int steps);
                    ( "steps_per_sec",
                      Int (int_of_float (float_of_int steps *. 1e9 /. ns)) );
                    ("execs_per_sec", Int (int_of_float (1e9 /. ns)));
                  ] ))
      engine_benchmarks
  in
  let perf =
    List.map (fun (name, ns) -> (name, Int (ns_int ns))) perf_rows
  in
  let sections =
    List.map
      (fun (name, dt) -> (name, Int (int_of_float (Float.round (dt *. 1e3)))))
      !section_timings
  in
  let sweep =
    List.map
      (fun (jobs, dt, speedup, identical) ->
        Obj
          [
            ("jobs", Int jobs);
            ("ms", Int (int_of_float (Float.round (dt *. 1e3))));
            ("speedup_x100", Int (int_of_float (Float.round (speedup *. 100.))));
            ("identical", Bool identical);
          ])
      jobs_sweep
  in
  let steps =
    List.map
      (fun (key, executed, saved) ->
        ( key,
          Obj
            [
              ("steps_executed", Int executed);
              ("steps_saved", Int saved);
              ("steps_unbatched", Int (executed + saved));
              ("factor_x100", Int ((executed + saved) * 100 / max 1 executed));
            ] ))
      steps_rows
  in
  Obj
    [
      ("schema", Str "sctbench-bench-engine/v2");
      ("limit", Int limit);
      ("seed", Int seed);
      ("jobs", Int jobs);
      ("engine", Obj engine);
      ("perf_ns", Obj perf);
      ("sections_ms", Obj sections);
      ("jobs_sweep", Arr sweep);
      ("steps_benches", Arr (List.map (fun n -> Str n) steps_benches));
      ("steps", Obj steps);
    ]

let write_out path json =
  let oc = open_out path in
  output_string oc (Sct_store.Json.to_string json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "\nwrote %s\n" path

(* Fail (exit 1) if any engine benchmark regressed more than
   [--baseline-factor] (default 2x) against the committed baseline's
   ns_per_run, or if the prefix-batched executor's steps cut dropped below
   the baseline's per-technique [min_factor_x100] floor. *)
let check_baseline ~perf_rows ~steps_rows path =
  let doc =
    In_channel.with_open_bin path In_channel.input_all
    |> Sct_store.Json.of_string
  in
  let entries =
    match Sct_store.Json.member "engine" doc with
    | Some (Sct_store.Json.Obj fields) -> fields
    | _ -> failwith (path ^ ": no \"engine\" object")
  in
  let failed = ref false in
  List.iter
    (fun (key, entry) ->
      match Sct_store.Json.member "ns_per_run" entry with
      | Some (Sct_store.Json.Int base_ns) -> (
          match find_perf perf_rows key with
          | None ->
              Printf.printf "baseline check: %s not measured\n" key;
              failed := true
          | Some ns ->
              let ratio = ns /. float_of_int base_ns in
              Printf.printf "baseline check: %-30s %10.0f ns vs %8d ns (%.2fx)\n"
                key ns base_ns ratio;
              if ratio > baseline_factor then begin
                Printf.printf
                  "  REGRESSION: more than %gx slower than baseline\n"
                  baseline_factor;
                failed := true
              end)
      | _ -> ())
    entries;
  (match Sct_store.Json.member "steps" doc with
  | Some (Sct_store.Json.Obj floors) ->
      List.iter
        (fun (key, entry) ->
          match Sct_store.Json.member "min_factor_x100" entry with
          | Some (Sct_store.Json.Int floor) -> (
              match
                List.find_opt (fun (k, _, _) -> k = key) steps_rows
              with
              | None ->
                  Printf.printf "baseline check: steps/%s not measured\n" key;
                  failed := true
              | Some (_, executed, saved) ->
                  let factor_x100 =
                    (executed + saved) * 100 / max 1 executed
                  in
                  Printf.printf
                    "baseline check: steps/%-24s %d.%02dx cut (floor %d.%02dx)\n"
                    key (factor_x100 / 100) (factor_x100 mod 100) (floor / 100)
                    (floor mod 100);
                  if factor_x100 < floor then begin
                    Printf.printf
                      "  REGRESSION: the prefix-batched steps cut fell below \
                       the floor\n";
                    failed := true
                  end)
          | _ -> ())
        floors
  | _ -> ());
  if !failed then begin
    Printf.printf "baseline check FAILED\n";
    exit 1
  end
  else Printf.printf "baseline check passed\n"

let () =
  Printf.printf
    "SCTBench schedule-bounding study — limit %d terminal schedules per \
     technique, seed %d\n"
    limit seed;
  if wants "table1" then
    timed "table1" (fun () ->
        hr "Table 1";
        Sct_report.Table1.print Sctbench.Registry.all);
  let rows_needed =
    List.exists wants [ "table2"; "table3"; "fig2"; "fig3"; "fig4" ]
  in
  if rows_needed then begin
    let rows = timed "study-rows" (fun () -> Lazy.force study_rows) in
    if wants "table3" then
      timed "table3" (fun () ->
          hr "Table 3";
          Sct_report.Table3.print ~limit rows;
          Sct_report.Table3.print_agreement rows);
    if wants "table2" then
      timed "table2" (fun () ->
          hr "Table 2";
          Sct_report.Table2.print ~limit rows);
    if wants "fig2" then
      timed "fig2" (fun () ->
          hr "Figure 2";
          Sct_report.Venn.print_figure2 rows);
    if wants "fig3" then
      timed "fig3" (fun () ->
          hr "Figure 3";
          Sct_report.Figures.print_figure3 ~limit rows);
    if wants "fig4" then
      timed "fig4" (fun () ->
          hr "Figure 4";
          Sct_report.Figures.print_figure4 ~limit rows)
  end;
  if wants "por" then timed "por" run_por;
  if wants "pct" then timed "pct" run_pct;
  (* steps before jobs: the sweep spawns worker domains, after which the
     runtime refuses [Unix.fork] and the batched executor measures its
     fallback (same counters, but the fork server is the shipped path) *)
  let steps_rows = if wants "steps" then timed "steps" run_steps else [] in
  let jobs_sweep =
    if wants "jobs" then timed "jobs" run_jobs else []
  in
  let perf_rows = if wants "perf" then timed "perf" run_perf else [] in
  (match out_file with
  | None -> ()
  | Some path -> write_out path (bench_json ~perf_rows ~jobs_sweep ~steps_rows));
  match baseline_file with
  | None -> ()
  | Some path -> check_baseline ~perf_rows ~steps_rows path
