(* The benchmark harness: regenerates every table and figure of the paper's
   evaluation (§6) and times the machinery with Bechamel.

   Usage:
     dune exec bench/main.exe                      (full study, limit 10000)
     dune exec bench/main.exe -- --limit 2000      (quicker study)
     dune exec bench/main.exe -- table3 fig2       (selected sections)
     dune exec bench/main.exe -- --jobs 4 table3   (parallel study run)
     dune exec bench/main.exe -- perf              (Bechamel timings only)

   Sections: table1 table2 table3 fig2 fig3 fig4 por pct jobs perf
   (default: all). *)

open Bechamel
open Toolkit

let sections, limit, seed, jobs =
  let sections = ref [] in
  let limit = ref 10_000 in
  let seed = ref 0 in
  let jobs = ref 0 in
  let rec parse = function
    | [] -> ()
    | "--limit" :: v :: rest ->
        limit := int_of_string v;
        parse rest
    | "--seed" :: v :: rest ->
        seed := int_of_string v;
        parse rest
    | "--jobs" :: v :: rest ->
        jobs := int_of_string v;
        parse rest
    | s :: rest ->
        sections := s :: !sections;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let all =
    [
      "table1"; "table2"; "table3"; "fig2"; "fig3"; "fig4"; "por"; "pct";
      "jobs"; "perf";
    ]
  in
  let sections = if !sections = [] then all else List.rev !sections in
  let jobs = if !jobs <= 0 then Sct_parallel.Pool.default_jobs () else !jobs in
  (sections, !limit, !seed, jobs)

let wants s = List.mem s sections

let options =
  { Sct_explore.Techniques.default_options with
    Sct_explore.Techniques.limit; seed; jobs }

(* The full study run is shared by table2/table3/fig2/fig3/fig4. The rows
   are identical for every [jobs] value (see lib/parallel). *)
let study_rows =
  lazy
    (let progress (b : Sctbench.Bench.t) =
       Printf.eprintf "[%2d/52] %s...\n%!" b.Sctbench.Bench.id
         b.Sctbench.Bench.name
     in
     Sct_parallel.Pool.with_pool ~jobs (fun pool ->
         Sct_parallel.Suite.run_all ~pool ~progress options
           Sctbench.Registry.all))

let hr title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

(* --- Bechamel micro-benchmarks --- *)

let rr_scheduler (ctx : Sct_core.Runtime.ctx) =
  match
    Sct_core.Delay.deterministic_choice ~n:ctx.c_n_threads ~last:ctx.c_last
      ~enabled:ctx.c_enabled
  with
  | Some t -> t
  | None -> assert false

let bench_program name =
  match Sctbench.Registry.by_name name with
  | Some b -> b.Sctbench.Bench.program
  | None -> failwith ("missing benchmark " ^ name)

let promote_all _ = true

let perf_tests () =
  let small = bench_program "CS.twostage_bad" in
  let wsq = bench_program "chess.WSQ" in
  let engine =
    Test.make_grouped ~name:"engine"
      [
        Test.make ~name:"rr-execution/twostage"
          (Staged.stage (fun () ->
               Sys.opaque_identity
                 (Sct_core.Runtime.exec ~promote:promote_all
                    ~record_decisions:false ~scheduler:rr_scheduler small)));
        Test.make ~name:"rr-execution/wsq"
          (Staged.stage (fun () ->
               Sys.opaque_identity
                 (Sct_core.Runtime.exec ~promote:promote_all
                    ~record_decisions:false ~scheduler:rr_scheduler wsq)));
      ]
  in
  let techniques =
    (* per-technique cost of exploring (up to) 25 terminal schedules of the
       same benchmark: the ablation view of the study's engine *)
    Test.make_grouped ~name:"schedules-25"
      [
        Test.make ~name:"dfs"
          (Staged.stage (fun () ->
               Sys.opaque_identity
                 (Sct_explore.Dfs.explore ~promote:promote_all
                    ~bound:Sct_explore.Dfs.Unbounded ~limit:25 small)));
        Test.make ~name:"ipb"
          (Staged.stage (fun () ->
               Sys.opaque_identity
                 (Sct_explore.Bounded.explore ~promote:promote_all
                    ~kind:Sct_explore.Bounded.Preemption_bounding ~limit:25
                    small)));
        Test.make ~name:"idb"
          (Staged.stage (fun () ->
               Sys.opaque_identity
                 (Sct_explore.Bounded.explore ~promote:promote_all
                    ~kind:Sct_explore.Bounded.Delay_bounding ~limit:25 small)));
        Test.make ~name:"rand"
          (Staged.stage (fun () ->
               Sys.opaque_identity
                 (Sct_explore.Random_walk.explore ~promote:promote_all ~seed:1
                    ~runs:25 small)));
        Test.make ~name:"pct"
          (Staged.stage (fun () ->
               Sys.opaque_identity
                 (Sct_explore.Pct.explore ~promote:promote_all ~seed:1
                    ~runs:25 small)));
      ]
  in
  let race =
    Test.make_grouped ~name:"race-detection"
      [
        Test.make ~name:"one-round/twostage"
          (Staged.stage (fun () ->
               Sys.opaque_identity
                 (Sct_race.Promotion.detect ~runs:1 ~max_rounds:1 small)));
        Test.make ~name:"fixpoint/twostage"
          (Staged.stage (fun () ->
               Sys.opaque_identity (Sct_race.Promotion.detect ~runs:2 small)));
      ]
  in
  let parallel =
    (* the domain-pool engine on a 3-benchmark slice: jobs=1 falls back to
       the sequential code, jobs=4 exercises pool + merging (the measured
       time includes pool setup/teardown, as a real run would) *)
    let o =
      { Sct_explore.Techniques.default_options with
        Sct_explore.Techniques.limit = 200 }
    in
    let pick n = Option.get (Sctbench.Registry.by_name n) in
    let slice () =
      [ pick "CS.lazy01_bad"; pick "CS.twostage_bad"; pick "CS.reorder_3_bad" ]
    in
    let suite_with jobs () =
      Sys.opaque_identity
        (Sct_parallel.Pool.with_pool ~jobs (fun pool ->
             Sct_parallel.Suite.run_all ~pool o (slice ())))
    in
    Test.make_grouped ~name:"parallel"
      [
        Test.make ~name:"suite-slice/jobs-1" (Staged.stage (suite_with 1));
        Test.make ~name:"suite-slice/jobs-4" (Staged.stage (suite_with 4));
      ]
  in
  (* one Bechamel test per table/figure generator (on a 3-benchmark slice) *)
  let mini_rows =
    lazy
      (let o =
         { Sct_explore.Techniques.default_options with
           Sct_explore.Techniques.limit = 200 }
       in
       let pick n = Option.get (Sctbench.Registry.by_name n) in
       Sct_report.Run_data.run_all o
         [ pick "CS.lazy01_bad"; pick "CS.twostage_bad"; pick "splash2.fft" ])
  in
  let null_out = Format.make_formatter (fun _ _ _ -> ()) (fun () -> ()) in
  let tables =
    Test.make_grouped ~name:"reports"
      [
        Test.make ~name:"table1"
          (Staged.stage (fun () ->
               Sct_report.Table1.print ~out:null_out Sctbench.Registry.all));
        Test.make ~name:"table2"
          (Staged.stage (fun () ->
               Sct_report.Table2.print ~out:null_out ~limit:200
                 (Lazy.force mini_rows)));
        Test.make ~name:"table3"
          (Staged.stage (fun () ->
               Sct_report.Table3.print ~out:null_out ~limit:200
                 (Lazy.force mini_rows)));
        Test.make ~name:"fig2"
          (Staged.stage (fun () ->
               Sct_report.Venn.print_figure2 ~out:null_out
                 (Lazy.force mini_rows)));
        Test.make ~name:"fig3"
          (Staged.stage (fun () ->
               Sct_report.Figures.print_figure3 ~out:null_out ~limit:200
                 (Lazy.force mini_rows)));
        Test.make ~name:"fig4"
          (Staged.stage (fun () ->
               Sct_report.Figures.print_figure4 ~out:null_out ~limit:200
                 (Lazy.force mini_rows)));
      ]
  in
  Test.make_grouped ~name:"sctbench"
    [ engine; techniques; race; parallel; tables ]

(* Extension ablation 1 (paper §8 future work): partial-order reduction.
   POR needs complete dependence information, so every location is promoted
   and the comparison baseline is plain unbounded DFS under the same
   promotion. *)
let run_por () =
  hr "Extension: partial-order reduction vs. plain DFS (all locations visible)";
  Printf.printf "%-28s %9s %9s %9s %9s %11s %s\n" "benchmark" "DFS" "hb-cls"
    "sleep" "dpor" "dpor+sleep" "(schedules / 'L' = limit; * = bug found)";
  let subset =
    [
      "CS.account_bad";
      "CS.bluetooth_driver_bad";
      "CS.deadlock01_bad";
      "CS.lazy01_bad";
      "CS.reorder_3_bad";
      "CS.stack_bad";
      "CS.twostage_bad";
      "CS.wronglock_3_bad";
      "misc.ctrace-test";
      "splash2.fft";
      "splash2.lu";
    ]
  in
  List.iter
    (fun name ->
      let program = bench_program name in
      let show_d (r : Sct_explore.Dfs.level_result) =
        Printf.sprintf "%s%s"
          (if r.Sct_explore.Dfs.hit_limit then "L"
           else string_of_int r.Sct_explore.Dfs.counted)
          (if r.Sct_explore.Dfs.to_first_bug <> None then "*" else "")
      in
      let show_p (r : Sct_explore.Por.result) =
        Printf.sprintf "%s%s"
          (if r.Sct_explore.Por.hit_limit then "L"
           else string_of_int r.Sct_explore.Por.counted)
          (if r.Sct_explore.Por.to_first_bug <> None then "*" else "")
      in
      let d =
        Sct_explore.Dfs.explore ~promote:promote_all
          ~bound:Sct_explore.Dfs.Unbounded ~limit program
      in
      (* distinct happens-before classes among the DFS schedules: the
         redundancy HB caching / POR removes (paper §7) *)
      let _, hb_classes =
        Sct_explore.Hb_signature.distinct_under_dfs ~promote:promote_all
          ~limit program
      in
      let p mode = Sct_explore.Por.explore ~promote:promote_all ~mode ~limit program in
      Printf.printf "%-28s %9s %9d %9s %9s %11s\n" name (show_d d) hb_classes
        (show_p (p Sct_explore.Por.Sleep))
        (show_p (p Sct_explore.Por.Dpor))
        (show_p (p Sct_explore.Por.Dpor_sleep)))
    subset

(* Extension ablation 2 (paper §7 related work): PCT vs. the naive random
   scheduler, under the same budget and the study's promotion sets. *)
let run_pct () =
  hr "Extension: PCT vs. naive random scheduling";
  Printf.printf "%-28s | %-18s | %-18s\n" "benchmark" "Rand first/buggy"
    "PCT first/buggy";
  let o = options in
  List.iter
    (fun name ->
      let b = Option.get (Sctbench.Registry.by_name name) in
      let detection =
        Sct_explore.Techniques.detect_races o b.Sctbench.Bench.program
      in
      let promote = Sct_race.Promotion.promote detection in
      let show (s : Sct_explore.Stats.t) =
        Printf.sprintf "%s/%d"
          (match s.Sct_explore.Stats.to_first_bug with
          | Some i -> string_of_int i
          | None -> "-")
          s.Sct_explore.Stats.buggy
      in
      let rand =
        Sct_explore.Techniques.run ~promote o Sct_explore.Techniques.Rand
          b.Sctbench.Bench.program
      in
      let pct =
        Sct_explore.Techniques.run ~promote o Sct_explore.Techniques.PCT
          b.Sctbench.Bench.program
      in
      Printf.printf "%-28s | %-18s | %-18s\n" name (show rand) (show pct))
    [
      "CB.stringbuffer-jdk1.4";
      "CS.reorder_4_bad";
      "CS.wronglock_bad";
      "chess.WSQ";
      "inspect.qsort_mt";
      "parsec.ferret";
      "radbench.bug2";
      "radbench.bug4";
      "misc.safestack";
    ]

(* Wall-clock scaling of the parallel engine: the same suite slice at
   jobs in {1, 2, 4, 8}, checking along the way that every row is identical
   to the sequential run (the engine's determinism guarantee). *)
let run_jobs () =
  hr "Parallel engine: jobs sweep (wall-clock, CS suite)";
  let benches =
    List.filter
      (fun (b : Sctbench.Bench.t) ->
        b.Sctbench.Bench.suite = Sctbench.Bench.CS)
      Sctbench.Registry.all
  in
  let o =
    { options with Sct_explore.Techniques.limit = min limit 1_000 }
  in
  let time jobs =
    let t0 = Unix.gettimeofday () in
    let rows =
      Sct_parallel.Pool.with_pool ~jobs (fun pool ->
          Sct_parallel.Suite.run_all ~pool o benches)
    in
    (rows, Unix.gettimeofday () -. t0)
  in
  let rows_equal a b =
    List.for_all2
      (fun (a : Sct_report.Run_data.row) (b : Sct_report.Run_data.row) ->
        a.Sct_report.Run_data.racy_locations
        = b.Sct_report.Run_data.racy_locations
        && List.for_all2
             (fun (t, s) (t', s') ->
               t = t' && Sct_explore.Stats.equal s s')
             a.Sct_report.Run_data.results b.Sct_report.Run_data.results)
      a b
  in
  Printf.printf "limit %d, %d benchmarks\n" o.Sct_explore.Techniques.limit
    (List.length benches);
  Printf.printf "%6s %10s %9s  %s\n" "jobs" "seconds" "speedup" "rows";
  let base_rows, base_dt = time 1 in
  Printf.printf "%6d %10.2f %8.2fx  %s\n%!" 1 base_dt 1.0 "baseline";
  List.iter
    (fun jobs ->
      let rows, dt = time jobs in
      Printf.printf "%6d %10.2f %8.2fx  %s\n%!" jobs dt (base_dt /. dt)
        (if rows_equal base_rows rows then "identical"
         else "DIFFERENT (bug!)"))
    [ 2; 4; 8 ]

let run_perf () =
  hr "Bechamel timings";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 500) ()
  in
  let raw = Benchmark.all cfg instances (perf_tests ()) in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name result acc ->
        match Analyze.OLS.estimates result with
        | Some [ est ] -> (name, est) :: acc
        | _ -> (name, nan) :: acc)
      results []
  in
  List.iter
    (fun (name, est) ->
      if est >= 1e6 then Printf.printf "%-55s %10.2f ms/run\n" name (est /. 1e6)
      else if est >= 1e3 then
        Printf.printf "%-55s %10.2f us/run\n" name (est /. 1e3)
      else Printf.printf "%-55s %10.1f ns/run\n" name est)
    (List.sort compare rows)

let () =
  Printf.printf
    "SCTBench schedule-bounding study — limit %d terminal schedules per \
     technique, seed %d\n"
    limit seed;
  if wants "table1" then begin
    hr "Table 1";
    Sct_report.Table1.print Sctbench.Registry.all
  end;
  let rows_needed =
    List.exists wants [ "table2"; "table3"; "fig2"; "fig3"; "fig4" ]
  in
  if rows_needed then begin
    let rows = Lazy.force study_rows in
    if wants "table3" then begin
      hr "Table 3";
      Sct_report.Table3.print ~limit rows;
      Sct_report.Table3.print_agreement rows
    end;
    if wants "table2" then begin
      hr "Table 2";
      Sct_report.Table2.print ~limit rows
    end;
    if wants "fig2" then begin
      hr "Figure 2";
      Sct_report.Venn.print_figure2 rows
    end;
    if wants "fig3" then begin
      hr "Figure 3";
      Sct_report.Figures.print_figure3 ~limit rows
    end;
    if wants "fig4" then begin
      hr "Figure 4";
      Sct_report.Figures.print_figure4 ~limit rows
    end
  end;
  if wants "por" then run_por ();
  if wants "pct" then run_pct ();
  if wants "jobs" then run_jobs ();
  if wants "perf" then run_perf ()
